"""The persistent artifact store: memmap embeddings and durable ANN indexes.

Every expensive artifact the pipeline builds — embedding matrices, LSH
hyperplane tables and code matrices — used to die with the process.  The
:class:`ArtifactStore` externalises them to a directory, keyed by the
fingerprint scheme of :mod:`repro.storage.fingerprint`, so that a restarted
:class:`~repro.core.engine.IntegrationEngine` (or a second engine, or a
process-pool worker) attaches to warm state instead of recomputing it.

Layout (``docs/storage.md`` documents it in full)::

    <root>/
      .tmp/                                  # in-flight publications
      embeddings/<embedder_fp>/<corpus_fp>/
        meta.json                            # version + fingerprints + shape
        keys.json                            # row i of the matrix embeds keys[i]
        matrix.npy                           # loaded with np.load(mmap_mode="r")
      ann/<embedder_fp>/<params_fp>/<corpus_fp>/
        meta.json
        planes.npy                           # (n_tables, n_bits, dimension)
        codes.npy                            # (n_tables, n_values) int64
      ivf/<embedder_fp>/<params_fp>/<corpus_fp>/
        meta.json
        centroids.npy                        # (n_clusters, dimension)
        assignments.npy                      # (n_values,) int64 cluster ids

Three properties the callers rely on:

* **Atomic publication.**  Every artifact is written into a fresh directory
  under ``.tmp/`` and published with one ``rename`` — readers never observe
  a partially written artifact, and two writers racing to publish the same
  fingerprint resolve to one winner (the loser discards its copy; the
  content is identical by construction, so it does not matter which).
* **Validated reads.**  A load checks the format version, both fingerprints
  and the matrix shape against ``meta.json``; any mismatch, missing file or
  unreadable array is treated as a miss (counted in :meth:`statistics`),
  never an error — a corrupt or stale entry degrades to a rebuild.
* **Memmap returns.**  Loaded matrices are ``numpy`` memmaps: attaching a
  10M-row embedding matrix costs a page table, not a copy, and every process
  attaching the same file shares the page cache.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

#: On-disk format version; bumped on incompatible layout changes.  A reader
#: treats any other version as a miss, so old stores degrade to cold starts
#: instead of undefined behaviour.
FORMAT_VERSION = 1

#: Store modes accepted by the configuration layer.  ``"off"`` means no store
#: is constructed at all; :class:`ArtifactStore` itself only exists in
#: ``"read"`` (attach, never publish) or ``"readwrite"`` mode.
STORE_MODES = ("off", "read", "readwrite")


class _Counters:
    """Thread-safe counter map shared by every view of one store."""

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {
            "segment_loads": 0,
            "segment_saves": 0,
            "index_loads": 0,
            "index_saves": 0,
            "corrupt_entries": 0,
            "corrupt_segments": 0,
            "rejected_entries": 0,
            "duplicate_publishes": 0,
        }

    def bump(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)


class ArtifactStore:
    """A directory of fingerprint-keyed, atomically published artifacts.

    Parameters
    ----------
    root:
        The store directory.  Created (with parents) in ``"readwrite"``
        mode; in ``"read"`` mode a missing directory is simply an empty
        store.
    mode:
        ``"readwrite"`` (attach and publish) or ``"read"`` (attach only —
        every ``save_*`` call is a validated no-op returning ``False``).
    """

    def __init__(self, root: Union[str, Path], mode: str = "readwrite") -> None:
        if mode not in ("read", "readwrite"):
            raise ValueError(
                f"mode must be 'read' or 'readwrite', got {mode!r} "
                "(mode 'off' means: do not construct a store)"
            )
        self.root = Path(root)
        self.mode = mode
        self._counters = _Counters()
        if mode == "readwrite":
            (self.root / ".tmp").mkdir(parents=True, exist_ok=True)

    # -- introspection ---------------------------------------------------------------
    @property
    def can_write(self) -> bool:
        """Whether this view of the store may publish artifacts."""
        return self.mode == "readwrite"

    def with_mode(self, mode: str) -> "ArtifactStore":
        """A view of the same directory under a different mode.

        The view shares the underlying counters, so per-request read-only
        views (the engine's ``store_mode="read"`` override) still account
        their loads against the engine's store statistics.
        """
        if mode == self.mode:
            return self
        view = ArtifactStore(self.root, mode)
        view._counters = self._counters
        return view

    def statistics(self) -> Dict[str, int]:
        """Snapshot of the load/save/corruption counters."""
        return self._counters.snapshot()

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r}, mode={self.mode!r})"

    # -- embedding segments ----------------------------------------------------------
    def _embeddings_dir(self, embedder_fp: str) -> Path:
        return self.root / "embeddings" / embedder_fp

    def list_embedding_segments(self, embedder_fp: str) -> List[str]:
        """Corpus fingerprints of every published segment for one embedder."""
        directory = self._embeddings_dir(embedder_fp)
        if not directory.is_dir():
            return []
        return sorted(
            entry.name for entry in directory.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def load_embedding_segment(
        self, embedder_fp: str, corpus_fp: str
    ) -> Optional[Tuple[List[str], np.ndarray]]:
        """Attach one segment: ``(keys, matrix)`` with the matrix memmapped.

        Row ``i`` of the matrix is the embedding of ``keys[i]``.  Returns
        ``None`` — never raises — when the segment is absent, written for
        different fingerprints, from another format version, or corrupt.
        """
        directory = self._embeddings_dir(embedder_fp) / corpus_fp
        meta = self._read_meta(directory)
        if meta is None:
            return None
        if not self._meta_matches(
            meta, kind="embeddings", embedder=embedder_fp, corpus=corpus_fp
        ):
            return None
        try:
            keys_raw = json.loads((directory / "keys.json").read_text(encoding="utf-8"))
            matrix = np.load(directory / "matrix.npy", mmap_mode="r")
        except Exception:
            self._corrupt(directory)
            return None
        if (
            not isinstance(keys_raw, list)
            or matrix.ndim != 2
            or matrix.shape[0] != len(keys_raw)
            or matrix.shape != (meta.get("rows"), meta.get("dimension"))
        ):
            self._corrupt(directory)
            return None
        self._counters.bump("segment_loads")
        return [str(key) for key in keys_raw], matrix

    def save_embedding_segment(
        self,
        embedder_fp: str,
        corpus_fp: str,
        keys: List[str],
        matrix: np.ndarray,
    ) -> bool:
        """Publish one segment atomically; ``False`` if it already exists.

        ``matrix`` must be ``(len(keys), dimension)``.  Publication is
        write-then-rename: a crash mid-write leaves only ``.tmp/`` garbage,
        and a concurrent publisher of the same fingerprint loses the rename
        race harmlessly (the artifacts are identical by construction).
        """
        matrix = np.ascontiguousarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != len(keys):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {len(keys)} keys"
            )
        meta = {
            "format_version": FORMAT_VERSION,
            "kind": "embeddings",
            "embedder": embedder_fp,
            "corpus": corpus_fp,
            "rows": int(matrix.shape[0]),
            "dimension": int(matrix.shape[1]),
            "dtype": str(matrix.dtype),
        }

        def write(tmp: Path) -> None:
            np.save(tmp / "matrix.npy", matrix)
            (tmp / "keys.json").write_text(
                json.dumps(list(keys), ensure_ascii=False), encoding="utf-8"
            )
            (tmp / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")

        published = self._publish(self._embeddings_dir(embedder_fp) / corpus_fp, write)
        if published:
            self._counters.bump("segment_saves")
        return published

    # -- ANN indexes -----------------------------------------------------------------
    def _ann_dir(self, embedder_fp: str, params_fp: str) -> Path:
        return self.root / "ann" / embedder_fp / params_fp

    def load_ann_index(
        self, embedder_fp: str, params_fp: str, corpus_fp: str
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Attach one LSH index: ``(planes, codes)``, both memmapped.

        ``planes`` is the ``(n_tables, n_bits, dimension)`` hyperplane stack
        and ``codes`` the ``(n_tables, n_values)`` integer code matrix whose
        column ``i`` codes value ``i`` of the fingerprinted corpus.  Returns
        ``None`` on absence, fingerprint mismatch or corruption.
        """
        directory = self._ann_dir(embedder_fp, params_fp) / corpus_fp
        meta = self._read_meta(directory)
        if meta is None:
            return None
        if not self._meta_matches(
            meta, kind="ann", embedder=embedder_fp, params=params_fp, corpus=corpus_fp
        ):
            return None
        try:
            planes = np.load(directory / "planes.npy", mmap_mode="r")
            codes = np.load(directory / "codes.npy", mmap_mode="r")
        except Exception:
            self._corrupt(directory)
            return None
        if (
            planes.ndim != 3
            or codes.ndim != 2
            or planes.shape[0] != codes.shape[0]
            or codes.shape[1] != meta.get("values")
        ):
            self._corrupt(directory)
            return None
        self._counters.bump("index_loads")
        return planes, codes

    def save_ann_index(
        self,
        embedder_fp: str,
        params_fp: str,
        corpus_fp: str,
        planes: np.ndarray,
        codes: np.ndarray,
    ) -> bool:
        """Publish one LSH index atomically; ``False`` if it already exists."""
        planes = np.ascontiguousarray(planes)
        codes = np.ascontiguousarray(codes)
        if planes.ndim != 3 or codes.ndim != 2 or planes.shape[0] != codes.shape[0]:
            raise ValueError(
                f"inconsistent index shapes: planes {planes.shape}, codes {codes.shape}"
            )
        meta = {
            "format_version": FORMAT_VERSION,
            "kind": "ann",
            "embedder": embedder_fp,
            "params": params_fp,
            "corpus": corpus_fp,
            "values": int(codes.shape[1]),
        }

        def write(tmp: Path) -> None:
            np.save(tmp / "planes.npy", planes)
            np.save(tmp / "codes.npy", codes)
            (tmp / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")

        published = self._publish(self._ann_dir(embedder_fp, params_fp) / corpus_fp, write)
        if published:
            self._counters.bump("index_saves")
        return published

    # -- IVF indexes -----------------------------------------------------------------
    def _ivf_dir(self, embedder_fp: str, params_fp: str) -> Path:
        return self.root / "ivf" / embedder_fp / params_fp

    def load_ivf_index(
        self, embedder_fp: str, params_fp: str, corpus_fp: str
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Attach one IVF index: ``(centroids, assignments)``, both memmapped.

        ``centroids`` is the ``(n_clusters, dimension)`` unit-vector centroid
        matrix and ``assignments`` the ``(n_values,)`` integer cluster of each
        value of the fingerprinted corpus.  Returns ``None`` on absence,
        fingerprint mismatch or corruption — the caller rebuilds.
        """
        directory = self._ivf_dir(embedder_fp, params_fp) / corpus_fp
        meta = self._read_meta(directory)
        if meta is None:
            return None
        if not self._meta_matches(
            meta, kind="ivf", embedder=embedder_fp, params=params_fp, corpus=corpus_fp
        ):
            return None
        try:
            centroids = np.load(directory / "centroids.npy", mmap_mode="r")
            assignments = np.load(directory / "assignments.npy", mmap_mode="r")
        except Exception:
            self._corrupt(directory)
            return None
        if (
            centroids.ndim != 2
            or assignments.ndim != 1
            or centroids.shape[0] != meta.get("clusters")
            or assignments.shape[0] != meta.get("values")
            or (len(assignments) and int(assignments.max()) >= centroids.shape[0])
        ):
            self._corrupt(directory)
            return None
        self._counters.bump("index_loads")
        return centroids, assignments

    def save_ivf_index(
        self,
        embedder_fp: str,
        params_fp: str,
        corpus_fp: str,
        centroids: np.ndarray,
        assignments: np.ndarray,
    ) -> bool:
        """Publish one IVF index atomically; ``False`` if it already exists."""
        centroids = np.ascontiguousarray(centroids)
        assignments = np.ascontiguousarray(assignments)
        if centroids.ndim != 2 or assignments.ndim != 1:
            raise ValueError(
                f"inconsistent index shapes: centroids {centroids.shape}, "
                f"assignments {assignments.shape}"
            )
        meta = {
            "format_version": FORMAT_VERSION,
            "kind": "ivf",
            "embedder": embedder_fp,
            "params": params_fp,
            "corpus": corpus_fp,
            "clusters": int(centroids.shape[0]),
            "values": int(assignments.shape[0]),
        }

        def write(tmp: Path) -> None:
            np.save(tmp / "centroids.npy", centroids)
            np.save(tmp / "assignments.npy", assignments)
            (tmp / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")

        published = self._publish(self._ivf_dir(embedder_fp, params_fp) / corpus_fp, write)
        if published:
            self._counters.bump("index_saves")
        return published

    # -- internals -------------------------------------------------------------------
    def _corrupt(self, directory: Path) -> None:
        """Account one corrupt artifact and quarantine its directory."""
        self._counters.bump("corrupt_entries")
        self._quarantine(directory)

    def _quarantine(self, directory: Path) -> None:
        """Move a corrupt artifact directory aside so it is never re-read.

        Without this, a corrupt entry degrades to a miss on *every* request —
        the validation cost (and the rebuild it forces) repeats forever, and
        a healing republish is impossible because the target path is
        occupied.  The directory is renamed into ``<root>/quarantine/`` (path
        components joined with ``-``, numeric suffix on collision) where an
        operator can inspect it; the vacated path lets the next publication
        replace the artifact with a good copy.  ``corrupt_segments`` counts
        the corruption regardless — a read-only view observes it but leaves
        the files in place (the writer view will quarantine on its next
        read).  Rename races lose silently: the artifact is gone either way.
        """
        self._counters.bump("corrupt_segments")
        if not self.can_write or not directory.is_dir():
            return
        try:
            quarantine_root = self.root / "quarantine"
            quarantine_root.mkdir(parents=True, exist_ok=True)
            name = "-".join(directory.relative_to(self.root).parts)
            target = quarantine_root / name
            suffix = 0
            while target.exists():
                suffix += 1
                target = quarantine_root / f"{name}.{suffix}"
            directory.rename(target)
        except OSError:
            pass

    def _read_meta(self, directory: Path) -> Optional[Dict[str, object]]:
        """Parse ``meta.json``, or ``None`` (counting corruption) on failure."""
        path = directory / "meta.json"
        if not path.is_file():
            # Absence of the whole artifact is an ordinary miss; a directory
            # that exists without its meta is a partial write worth counting.
            if directory.is_dir():
                self._corrupt(directory)
            return None
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._corrupt(directory)
            return None
        if not isinstance(meta, dict):
            self._corrupt(directory)
            return None
        return meta

    def _meta_matches(self, meta: Dict[str, object], **expected: object) -> bool:
        """Whether the meta carries the expected version and fingerprints."""
        if meta.get("format_version") != FORMAT_VERSION:
            self._counters.bump("rejected_entries")
            return False
        for key, value in expected.items():
            if meta.get(key) != value:
                self._counters.bump("rejected_entries")
                return False
        return True

    def _publish(self, target: Path, write: Callable[[Path], None]) -> bool:
        """Write an artifact into ``.tmp`` and rename it into place."""
        if not self.can_write:
            return False
        if target.exists():
            self._counters.bump("duplicate_publishes")
            return False
        tmp_root = self.root / ".tmp"
        tmp_root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=tmp_root))
        try:
            write(tmp)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp.rename(target)
        except OSError:
            # Lost the publication race (or the filesystem failed): discard
            # our copy.  If the target now exists, someone published the
            # identical artifact — that is success from the caller's view.
            shutil.rmtree(tmp, ignore_errors=True)
            if target.exists():
                self._counters.bump("duplicate_publishes")
            return False
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return True
