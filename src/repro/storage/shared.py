"""Zero-copy hand-off of large read-only arrays to process-pool workers.

The process backend of :func:`repro.utils.executor.run_partitioned` pickles
``fn`` and every batch across the pipe.  When the captured constants include
an embedding matrix, that pickling dominates the run — every batch re-ships
megabytes of float64 rows that every worker already could have shared.

This module provides the store hand-off instead:

* :func:`publish_array` writes an array to a ``.npy`` file once and returns
  a tiny :class:`ArrayHandle` (path + shape + dtype).
* :func:`attach_array` opens the file as a read-only ``numpy`` memmap,
  memoised **per process** — a worker attaches on first use and reuses the
  mapping for every subsequent batch; the OS page cache shares the physical
  pages between all workers on the machine.
* :class:`SharedArrays` owns a temporary directory of published arrays for
  the duration of one parallel region (context manager).
* :class:`SharedArrayBinding` wraps a worker function so that its pickled
  form carries handles instead of arrays: the parent binds real arrays, the
  pickle machinery swaps them for handles (via ``__reduce__``), and the
  worker rebuilds the binding by attaching the memmaps.

Determinism: attaching never changes values — a memmap slice materialises
exactly the float64 rows that were published — so a worker computing over an
attached matrix returns byte-identical results to the in-process path.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class ArrayHandle:
    """A picklable reference to a published read-only array."""

    path: str
    shape: Tuple[int, ...]
    dtype: str


#: Per-process memo of attached arrays, keyed by path.  Bounded: temporary
#: publications use unique paths, so the memo would otherwise grow for the
#: lifetime of a long-lived worker.
_ATTACHED: Dict[str, np.ndarray] = {}
_ATTACHED_LOCK = threading.Lock()
_ATTACHED_CAP = 64


def publish_array(array: np.ndarray, directory: Union[str, Path], name: str) -> ArrayHandle:
    """Write ``array`` to ``<directory>/<name>.npy`` and return its handle."""
    path = Path(directory) / f"{name}.npy"
    array = np.ascontiguousarray(array)
    np.save(path, array)
    return ArrayHandle(path=str(path), shape=tuple(array.shape), dtype=str(array.dtype))


def attach_array(handle: ArrayHandle) -> np.ndarray:
    """The published array as a read-only memmap (memoised per process)."""
    with _ATTACHED_LOCK:
        array = _ATTACHED.get(handle.path)
        if array is not None:
            return array
    loaded = np.load(handle.path, mmap_mode="r")
    if tuple(loaded.shape) != tuple(handle.shape) or str(loaded.dtype) != handle.dtype:
        raise ValueError(
            f"published array at {handle.path} has shape {loaded.shape} "
            f"({loaded.dtype}), handle expects {handle.shape} ({handle.dtype})"
        )
    with _ATTACHED_LOCK:
        if len(_ATTACHED) >= _ATTACHED_CAP:
            # Drop the oldest mapping; a stale entry re-attaches on demand.
            _ATTACHED.pop(next(iter(_ATTACHED)))
        _ATTACHED[handle.path] = loaded
    return loaded


class SharedArrays:
    """Arrays published to a private temp directory for one parallel region.

    ``close()`` (or the context manager exit) removes the directory.  POSIX
    semantics keep live worker mappings valid after the unlink; a worker
    attaching *late* would fail, which cannot happen because
    :func:`repro.utils.executor.run_partitioned` joins the pool before the
    region closes.
    """

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        directory: Optional[Union[str, Path]] = None,
    ) -> None:
        self._dir: Optional[str] = tempfile.mkdtemp(prefix="repro-shared-", dir=directory)
        self.handles: Dict[str, ArrayHandle] = {
            name: publish_array(array, self._dir, name) for name, array in arrays.items()
        }

    def close(self) -> None:
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _rebuild_binding(
    fn: Callable[..., object], handles: Dict[str, ArrayHandle], kwargs: Dict[str, object]
) -> "SharedArrayBinding":
    """Unpickle hook: rebuild the binding by attaching every handle."""
    binding = SharedArrayBinding.__new__(SharedArrayBinding)
    binding.fn = fn
    binding.arrays = {name: attach_array(handle) for name, handle in handles.items()}
    binding.kwargs = kwargs
    binding._handles = handles
    return binding


class SharedArrayBinding:
    """``fn`` with large read-only arrays bound as keyword arguments.

    Calling the binding runs ``fn(item, **arrays, **kwargs)``.  In the
    parent the arrays are the caller's in-memory matrices (serial and thread
    backends never touch the disk).  When pickled for a process pool, the
    binding serialises as ``(fn, handles, kwargs)`` — a few hundred bytes —
    and the worker-side rebuild attaches the memmaps instead.
    """

    __slots__ = ("fn", "arrays", "kwargs", "_handles")

    def __init__(
        self,
        fn: Callable[..., object],
        arrays: Mapping[str, np.ndarray],
        handles: Mapping[str, ArrayHandle],
        **kwargs: object,
    ) -> None:
        self.fn = fn
        self.arrays = dict(arrays)
        self.kwargs = dict(kwargs)
        self._handles = dict(handles)

    def __call__(self, item: object) -> object:
        return self.fn(item, **self.arrays, **self.kwargs)

    def __reduce__(self):
        return (_rebuild_binding, (self.fn, self._handles, self.kwargs))
