"""Persistent artifact storage: memmapped embeddings, durable ANN indexes.

The storage layer externalises the pipeline's expensive, recomputable state
(embedding matrices, LSH hyperplane tables and code matrices) into a
directory of fingerprint-keyed, atomically published artifacts:

* :class:`~repro.storage.store.ArtifactStore` — the directory protocol:
  versioned metadata, validated loads, write-then-rename publication.
* :class:`~repro.storage.cache.StoreBackedEmbeddingCache` — the two-tier
  embedding cache (in-memory hot tier over memmapped segments) that makes a
  restarted engine warm.
* :mod:`~repro.storage.shared` — zero-copy hand-off of read-only arrays to
  process-pool workers (publish once, attach per process).
* :mod:`~repro.storage.fingerprint` — the ``(embedder fingerprint, corpus
  fingerprint)`` keying scheme shared by everything above.

See ``docs/storage.md`` for the on-disk layout and the fingerprint scheme.
"""

from repro.storage.cache import StoreBackedEmbeddingCache
from repro.storage.fingerprint import (
    ann_params_fingerprint,
    corpus_fingerprint,
    embedder_fingerprint,
)
from repro.storage.shared import (
    ArrayHandle,
    SharedArrayBinding,
    SharedArrays,
    attach_array,
    publish_array,
)
from repro.storage.store import FORMAT_VERSION, STORE_MODES, ArtifactStore

__all__ = [
    "ArtifactStore",
    "StoreBackedEmbeddingCache",
    "ArrayHandle",
    "SharedArrayBinding",
    "SharedArrays",
    "attach_array",
    "publish_array",
    "ann_params_fingerprint",
    "corpus_fingerprint",
    "embedder_fingerprint",
    "FORMAT_VERSION",
    "STORE_MODES",
]
