"""Fingerprints that key every persisted artifact.

The :class:`~repro.storage.store.ArtifactStore` is content-addressed: an
artifact is valid for exactly one ``(embedder fingerprint, corpus
fingerprint)`` pair, and a lookup under the wrong pair must miss rather than
serve stale vectors.  Everything here is derived from BLAKE2b digests (like
:mod:`repro.utils.hashing`), so fingerprints are stable across processes,
platforms and Python versions — two engines on different machines pointed at
the same store directory agree on every key.

Scheme (documented in ``docs/storage.md``):

* **Embedder fingerprint** — ``"<registry name>.d<dimension>"``.  Two
  embedders agree on a fingerprint exactly when they agree on the registry
  name and the output dimension; a vector stored by one is valid for the
  other.  Human-readable on purpose: the store layout is debuggable with
  ``ls``.
* **Corpus fingerprint** — 16 hex characters of a BLAKE2b digest over the
  length-prefixed value texts.  Length prefixing makes the encoding
  injective (``["ab", "c"]`` and ``["a", "bc"]`` digest differently).
  *Unordered* fingerprints (cache segments: a set of texts) sort the
  distinct texts first; *ordered* fingerprints (ANN codes: row ``i`` is the
  code of text ``i``) preserve order and duplicates.
* **ANN parameter fingerprint** — ``"t<tables>.b<bits>.s<seed>"``: exactly
  the knobs that change the hyperplanes and codes.  ``top_k`` and
  ``min_similarity`` only steer retrieval over the codes, so they are
  deliberately *not* part of the key — one stored index serves every
  retrieval configuration.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

#: Hex digest length of corpus fingerprints (64 bits — collisions across the
#: handful of corpora one store holds are negligible, and short names keep
#: the directory layout readable).
_DIGEST_HEX_CHARS = 16


def embedder_fingerprint(name: str, dimension: int) -> str:
    """Fingerprint of an embedding model: registry name + output dimension."""
    safe = "".join(ch if (ch.isalnum() or ch in "-_.") else "_" for ch in str(name))
    return f"{safe}.d{int(dimension)}"


def _digest_texts(texts: Iterable[str]) -> str:
    digest = hashlib.blake2b(digest_size=_DIGEST_HEX_CHARS // 2)
    for text in texts:
        encoded = text.encode("utf-8")
        digest.update(len(encoded).to_bytes(8, "little"))
        digest.update(encoded)
    return digest.hexdigest()


def corpus_fingerprint(texts: Sequence[str], *, ordered: bool = False) -> str:
    """Fingerprint of a value corpus.

    ``ordered=False`` (cache segments) fingerprints the *set* of texts:
    duplicates collapse and order is irrelevant, because a segment's key
    table is looked up per text.  ``ordered=True`` (ANN code matrices)
    fingerprints the exact sequence, because row ``i`` of the stored codes
    must correspond to position ``i`` of the probing value list.
    """
    if ordered:
        return _digest_texts(texts)
    return _digest_texts(sorted(set(texts)))


def ann_params_fingerprint(n_tables: int, n_bits: int, seed: int) -> str:
    """Fingerprint of the LSH shape knobs that determine planes and codes."""
    return f"t{int(n_tables)}.b{int(n_bits)}.s{int(seed)}"


def ivf_params_fingerprint(iterations: int, seed: int) -> str:
    """Fingerprint of the IVF build knobs that determine centroids/assignments.

    Only the k-means iteration count and the seed enter the key: the cluster
    count is derived from the corpus size (already in the corpus fingerprint)
    and the probe width is a retrieval-time knob — like ``top_k`` for the LSH
    index, one stored IVF index serves every retrieval configuration.
    """
    return f"i{int(iterations)}.s{int(seed)}"
