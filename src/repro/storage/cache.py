"""A two-tier embedding cache: in-memory hot tier over memmapped segments.

:class:`StoreBackedEmbeddingCache` extends
:class:`~repro.embeddings.base.EmbeddingCache` with a *cold tier* backed by
an :class:`~repro.storage.store.ArtifactStore`:

* **Warm start.**  Construction attaches every published segment of the
  cache's embedder fingerprint: a text → (segment, row) table in memory,
  the vectors themselves on disk behind ``numpy`` memmaps.  A restarted
  :class:`~repro.core.engine.IntegrationEngine` — or a second engine
  pointed at the same directory — therefore serves lookups for every value
  any previous run embedded, without one raw embed call.
* **Promotion.**  A cold hit copies the row into the hot tier (normal dict
  of float64 vectors), so repeated lookups pay the memmap read once.
* **Publication.**  :meth:`publish` gathers the hot-tier vectors that are
  not yet durable, fingerprints their sorted texts and publishes them as
  one new segment (atomic write-then-rename via the store).  Publishing is
  content-addressed and idempotent: the same new texts always produce the
  same segment, and a concurrent engine publishing the identical segment
  resolves to one copy.

Thread safety matches the base class: every tier mutation happens under the
one cache lock, so a pool of engine workers shares the cache exactly as
before — the cold tier only adds read-mostly state under the same lock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embeddings.base import EmbeddingCache
from repro.storage.fingerprint import corpus_fingerprint, embedder_fingerprint
from repro.storage.store import ArtifactStore


class StoreBackedEmbeddingCache(EmbeddingCache):
    """An :class:`EmbeddingCache` with a persistent memmap-backed cold tier.

    Parameters
    ----------
    store:
        The artifact store to attach to (and publish into, if writable).
    model_name / dimension:
        Identity of the embedder this cache serves — together they form the
        embedder fingerprint that keys every segment.  Lookups for *other*
        model names fall through to plain in-memory behaviour (the cold
        tier answers only for its own embedder).
    max_entries:
        Hot-tier capacity, as in the base class.  Evicting a persisted
        entry is harmless: the next lookup re-promotes it from the cold
        tier instead of re-embedding.
    """

    def __init__(
        self,
        store: ArtifactStore,
        model_name: str,
        dimension: int,
        max_entries: Optional[int] = None,
    ) -> None:
        super().__init__(max_entries)
        self.store = store
        self.model_name = model_name
        self.dimension = int(dimension)
        self.embedder_fp = embedder_fingerprint(model_name, dimension)
        self.store_hits = 0
        self.store_misses = 0
        self.published_rows = 0
        self._segments: List[np.ndarray] = []
        self._cold: Dict[str, Tuple[int, int]] = {}
        self._persisted: Set[str] = set()
        self._attached_corpora: Set[str] = set()
        self.attach()

    # -- cold tier management --------------------------------------------------------
    def attach(self) -> int:
        """Attach every not-yet-attached segment; return rows gained.

        Called at construction (the warm start) and by :meth:`refresh` to
        pick up segments a concurrently running engine published since.
        Invalid or corrupt segments are skipped (the store counts them).
        """
        gained = 0
        for corpus_fp in self.store.list_embedding_segments(self.embedder_fp):
            with self._lock:
                if corpus_fp in self._attached_corpora:
                    continue
            loaded = self.store.load_embedding_segment(self.embedder_fp, corpus_fp)
            if loaded is None:
                continue
            keys, matrix = loaded
            if matrix.shape[1] != self.dimension:
                # A lying meta.json under the right fingerprint directory;
                # serving wrong-dimensional vectors would corrupt matching.
                continue
            with self._lock:
                if corpus_fp in self._attached_corpora:
                    continue
                segment_index = len(self._segments)
                self._segments.append(matrix)
                for row, text in enumerate(keys):
                    self._cold.setdefault(text, (segment_index, row))
                    self._persisted.add(text)
                self._attached_corpora.add(corpus_fp)
                gained += len(keys)
        return gained

    def refresh(self) -> int:
        """Re-scan the store directory for new segments (see :meth:`attach`)."""
        return self.attach()

    def publish(self) -> int:
        """Persist the hot-tier vectors that are not yet durable.

        Returns the number of rows in the newly published segment (0 when
        nothing new existed, the store is read-only, or another engine won
        the publication race — in the race case the rows *are* durable, just
        not through us, and they are marked persisted either way).
        """
        if not self.store.can_write:
            return 0
        with self._lock:
            pending = {
                text: vector
                for (model, text), vector in self._store.items()
                if model == self.model_name and text not in self._persisted
            }
        if not pending:
            return 0
        keys = sorted(pending)
        matrix = np.vstack([pending[key] for key in keys])
        corpus_fp = corpus_fingerprint(keys)
        published = self.store.save_embedding_segment(
            self.embedder_fp, corpus_fp, keys, matrix
        )
        with self._lock:
            self._persisted.update(keys)
            if published:
                self.published_rows += len(keys)
        # Attach the new segment (ours or, after a lost race, the identical
        # winner's) as a cold tier right away: a bounded hot tier may evict
        # these entries, and they must stay servable without a raw embed.
        self.attach()
        return len(keys) if published else 0

    @property
    def cold_rows(self) -> int:
        """Distinct texts servable from the memmapped cold tier."""
        with self._lock:
            return len(self._cold)

    # -- EmbeddingCache overrides ----------------------------------------------------
    def get(self, model: str, text: str) -> Optional[np.ndarray]:
        with self._lock:
            vector = self._store.get((model, text))
            if vector is not None:
                self.hits += 1
                return vector
            location = self._cold.get(text) if model == self.model_name else None
            if location is None:
                self.misses += 1
                if model == self.model_name:
                    self.store_misses += 1
                return None
            vector = self._promote(model, text, location)
            self.store_hits += 1
            return vector

    def fill_many(self, model: str, texts: Sequence[str], out: np.ndarray) -> List[int]:
        missing: List[int] = []
        batch_missing: Set[str] = set()
        with self._lock:
            store = self._store
            cold = self._cold if model == self.model_name else {}
            for index, text in enumerate(texts):
                vector = store.get((model, text))
                if vector is not None:
                    out[index] = vector
                    self.hits += 1
                    continue
                location = cold.get(text)
                if location is not None:
                    out[index] = self._promote(model, text, location)
                    self.store_hits += 1
                    continue
                missing.append(index)
                # Same accounting as the base class: repeated occurrences of
                # one uncached text count as one miss plus hits (the caller
                # embeds the text once and reuses the vector).
                if text in batch_missing:
                    self.hits += 1
                else:
                    batch_missing.add(text)
                    self.misses += 1
                    if model == self.model_name:
                        self.store_misses += 1
        return missing

    def clear(self) -> None:
        """Drop the hot tier and reset counters; the cold tier stays attached."""
        super().clear()
        with self._lock:
            self.store_hits = 0
            self.store_misses = 0

    def stats(self) -> Dict[str, int]:
        """Hot-tier counters plus the store tier's hit/row/publication stats."""
        base = super().stats()
        with self._lock:
            base.update(
                store_hits=self.store_hits,
                store_misses=self.store_misses,
                store_rows=len(self._cold),
                store_segments=len(self._segments),
                published_rows=self.published_rows,
            )
        return base

    # -- internals -------------------------------------------------------------------
    def _promote(self, model: str, text: str, location: Tuple[int, int]) -> np.ndarray:
        """Copy one cold row into the hot tier (caller holds the lock)."""
        segment, row = location
        vector = np.array(self._segments[segment][row], dtype=np.float64)
        # Base put handles capacity eviction and the fills counter; the
        # RLock makes the nested acquisition safe.
        super().put(model, text, vector)
        return vector
