"""Seeded, deterministic fault injection for the chaos test suite.

Production failure modes — transient embedder errors, latency spikes, dead
process workers, corrupted store segments — are by nature irreproducible,
which makes tests against them flaky unless the *injection* itself is
deterministic.  Everything in this module is: faults fire on scripted call
indices (or a seeded per-index rate), latency comes from a scripted
schedule, and the worker-crash helper crashes exactly once per marker file.
Running the same scripted scenario twice injects the exact same faults at
the exact same points.

The pieces:

* :class:`FaultInjector` — the schedule.  ``script("embed_many",
  fail_cycle=(2, 3))`` makes every third call succeed after two failures
  (the retry-masking scenario); ``fail_all=True`` is a hard-down backend
  (the breaker scenario); ``fail_calls={0, 4}`` fails exact call indices;
  ``fail_rate`` derives a per-index coin flip from the seed.  ``heal()``
  clears the schedule — the recovery scenario.
* :class:`FaultyEmbedder` — wraps any embedder; ``embed`` / ``embed_many``
  consult the injector before delegating.  Transparent like every
  :class:`~repro.embeddings.resilient.DelegatingEmbedder`: name, dimension
  and cache mirror the inner embedder.
* :class:`FaultyStore` — same idea in front of an
  :class:`~repro.storage.store.ArtifactStore`'s load/save calls.
* :func:`corrupt_array_file` — truncates a published ``.npy`` in place, the
  store-corruption scenario (quarantine + rebuild).
* :func:`crash_once` — a picklable work function whose first execution
  kills its whole process with ``os._exit`` (worker-death scenario); the
  marker file makes the retry succeed and is what keeps the crash count at
  exactly one across pool rebuilds.
* :func:`chaos_embedder_from_env` — builds a scripted
  :class:`FaultyEmbedder` from ``REPRO_CHAOS_*`` environment variables, so
  a *subprocess* (``repro serve --embedder chaos``) can run a fault
  scenario the parent scripted without any IPC.

Injectors are thread-safe; call indices are global per operation, so
concurrent callers observe one shared schedule (like one shared backend).
The injector deliberately holds a lock and is therefore not picklable —
process-backend fault injection goes through :func:`crash_once` or
:func:`corrupt_array_file`, which need no shared state.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from random import Random
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.embeddings.base import ValueEmbedder
from repro.embeddings.resilient import DelegatingEmbedder


class TransientFault(RuntimeError):
    """The injected failure type — a stand-in for any transient backend error."""


class _Script:
    """One operation's fault schedule (immutable once installed)."""

    __slots__ = (
        "fail_calls",
        "fail_all",
        "fail_rate",
        "fail_cycle",
        "latency_ms",
        "constant_latency_ms",
    )

    def __init__(
        self,
        fail_calls: FrozenSet[int],
        fail_all: bool,
        fail_rate: float,
        fail_cycle: Optional[Tuple[int, int]],
        latency_ms: Mapping[int, float],
        constant_latency_ms: float,
    ) -> None:
        self.fail_calls = fail_calls
        self.fail_all = fail_all
        self.fail_rate = fail_rate
        self.fail_cycle = fail_cycle
        self.latency_ms = dict(latency_ms)
        self.constant_latency_ms = constant_latency_ms


class FaultInjector:
    """Deterministic scripted fault source shared by the ``Faulty*`` wrappers.

    One injector can script any number of named operations; each operation
    keeps its own call counter.  All decisions are pure functions of
    ``(seed, operation, call index, script)`` — no wall clock, no global
    randomness — so a scenario replays identically run after run.
    """

    def __init__(self, seed: int = 0, sleep: Callable[[float], None] = time.sleep) -> None:
        self.seed = int(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._scripts: Dict[str, _Script] = {}
        self._calls: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}

    def script(
        self,
        operation: str,
        *,
        fail_calls: Iterable[int] = (),
        fail_all: bool = False,
        fail_rate: float = 0.0,
        fail_cycle: Optional[Tuple[int, int]] = None,
        latency_ms: Optional[Mapping[int, float]] = None,
        constant_latency_ms: float = 0.0,
    ) -> "FaultInjector":
        """Install (replacing) the schedule of one operation.

        ``fail_calls`` — exact 0-based call indices that fail.
        ``fail_all`` — every call fails (hard-down backend).
        ``fail_rate`` — probability a call fails, decided by a Random seeded
        with ``(seed, operation, index)`` — deterministic per index.
        ``fail_cycle=(n, period)`` — indices with ``index % period < n``
        fail: "every logical call fails ``n`` times, then succeeds" when the
        caller retries up to ``period`` attempts.
        ``latency_ms`` — per-index sleep before the call; ``constant_latency_ms``
        applies to every call.  Latency applies whether or not the call fails.
        Returns ``self`` for chaining.
        """
        if not 0.0 <= fail_rate <= 1.0:
            raise ValueError(f"fail_rate must be in [0, 1], got {fail_rate}")
        if fail_cycle is not None:
            failures, period = fail_cycle
            if period < 1 or not 0 <= failures <= period:
                raise ValueError(
                    f"fail_cycle must be (failures, period) with "
                    f"0 <= failures <= period and period >= 1, got {fail_cycle}"
                )
        if constant_latency_ms < 0:
            raise ValueError(f"constant_latency_ms must be >= 0, got {constant_latency_ms}")
        with self._lock:
            self._scripts[operation] = _Script(
                fail_calls=frozenset(int(index) for index in fail_calls),
                fail_all=fail_all,
                fail_rate=float(fail_rate),
                fail_cycle=fail_cycle,
                latency_ms=latency_ms or {},
                constant_latency_ms=float(constant_latency_ms),
            )
        return self

    def heal(self, operation: Optional[str] = None) -> None:
        """Remove the schedule of ``operation`` (or all of them).

        Call counters survive, so a healed operation's indices keep
        advancing — statistics stay cumulative across the recovery.
        """
        with self._lock:
            if operation is None:
                self._scripts.clear()
            else:
                self._scripts.pop(operation, None)

    def before(self, operation: str) -> None:
        """The hook wrappers call before delegating one ``operation`` call.

        Counts the call, applies any scripted latency, and raises
        :class:`TransientFault` when the schedule says this index fails.
        """
        with self._lock:
            index = self._calls.get(operation, 0)
            self._calls[operation] = index + 1
            script = self._scripts.get(operation)
        if script is None:
            return
        delay_ms = script.constant_latency_ms + script.latency_ms.get(index, 0.0)
        if delay_ms > 0:
            self._sleep(delay_ms / 1000.0)
        fail = (
            script.fail_all
            or index in script.fail_calls
            or (
                script.fail_cycle is not None
                and index % script.fail_cycle[1] < script.fail_cycle[0]
            )
            or (
                script.fail_rate > 0.0
                and Random(f"{self.seed}:{operation}:{index}").random() < script.fail_rate
            )
        )
        if fail:
            with self._lock:
                self._injected[operation] = self._injected.get(operation, 0) + 1
            raise TransientFault(f"injected fault in {operation!r} (call #{index})")

    def wrap_callable(
        self, fn: Callable[..., object], operation: str = "task"
    ) -> Callable[..., object]:
        """``fn`` with :meth:`before` prepended (serial/thread executors).

        The returned closure holds this injector (and its lock), so it is
        not process-pool-safe — use :func:`crash_once` for process workers.
        """

        def injected(*args: object, **kwargs: object) -> object:
            self.before(operation)
            return fn(*args, **kwargs)

        return injected

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-operation ``{"calls": n, "injected": m}`` counters."""
        with self._lock:
            operations = set(self._calls) | set(self._injected)
            return {
                operation: {
                    "calls": self._calls.get(operation, 0),
                    "injected": self._injected.get(operation, 0),
                }
                for operation in sorted(operations)
            }


class FaultyEmbedder(DelegatingEmbedder):
    """An embedder whose ``embed`` / ``embed_many`` consult a fault injector.

    Operations are named ``"embed"`` and ``"embed_many"``.  Place *inside* a
    :class:`~repro.embeddings.resilient.ResilientEmbedder` (the engine wraps
    automatically), so every retry attempt consults the schedule — exactly
    how a flaky backend behaves.
    """

    def __init__(self, inner: ValueEmbedder, injector: FaultInjector) -> None:
        super().__init__(inner)
        self.injector = injector

    def embed(self, value: object) -> np.ndarray:
        self.injector.before("embed")
        return self.inner.embed(value)

    def embed_many(self, values: Sequence[object]) -> np.ndarray:
        self.injector.before("embed_many")
        return self.inner.embed_many(values)


class FaultyStore:
    """An :class:`~repro.storage.store.ArtifactStore` front with injected faults.

    Load calls consult operation ``"store_load"``, save calls
    ``"store_save"``; everything else (statistics, modes, paths) delegates
    untouched.  Raised :class:`TransientFault`\\ s surface to the caller —
    the store's own corruption handling only covers *unreadable data*, and
    callers are expected to treat a faulted load like any transient IO
    error.
    """

    def __init__(self, inner: object, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def load_embedding_segment(self, *args: object, **kwargs: object):
        self.injector.before("store_load")
        return self.inner.load_embedding_segment(*args, **kwargs)

    def load_ann_index(self, *args: object, **kwargs: object):
        self.injector.before("store_load")
        return self.inner.load_ann_index(*args, **kwargs)

    def load_ivf_index(self, *args: object, **kwargs: object):
        self.injector.before("store_load")
        return self.inner.load_ivf_index(*args, **kwargs)

    def save_embedding_segment(self, *args: object, **kwargs: object):
        self.injector.before("store_save")
        return self.inner.save_embedding_segment(*args, **kwargs)

    def save_ann_index(self, *args: object, **kwargs: object):
        self.injector.before("store_save")
        return self.inner.save_ann_index(*args, **kwargs)

    def save_ivf_index(self, *args: object, **kwargs: object):
        self.injector.before("store_save")
        return self.inner.save_ivf_index(*args, **kwargs)

    def __getattr__(self, attribute: str):
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:
        return f"FaultyStore({self.inner!r})"


def corrupt_array_file(path: Union[str, Path]) -> None:
    """Truncate a published ``.npy`` (or any file) to half its bytes, in place.

    The store-corruption scenario: the artifact's directory still validates
    by fingerprint, but loading the array fails (or yields a wrong shape),
    which the store must count, quarantine and degrade to a rebuild.
    """
    target = Path(path)
    data = target.read_bytes()
    target.write_bytes(data[: max(1, len(data) // 2)])


def crash_once(item: float, marker: str) -> float:
    """Square ``item`` — but kill the whole process the first time, hard.

    Picklable work function for the worker-death scenario: if ``marker``
    does not exist yet, it is created and the *process* exits with
    ``os._exit`` (no exception, no cleanup — exactly what a segfault or
    OOM-kill looks like to the pool).  Every later call, in any process,
    computes normally — so a pool that recovers by re-running the failed
    batches produces the same result the serial backend does.  Use with
    ``functools.partial(crash_once, marker=...)``.
    """
    marker_path = Path(marker)
    if not marker_path.exists():
        try:
            # Exclusive create: when two workers race here, at most one
            # "wins" the crash... and the loser crashes too — which is fine,
            # a dying pool takes every worker with it anyway.
            with open(marker_path, "x", encoding="utf-8") as handle:
                handle.write("crashed")
        except OSError:
            pass
        os._exit(17)
    return float(item) * float(item)


#: Environment variables :func:`chaos_embedder_from_env` understands.
CHAOS_ENV_INNER = "REPRO_CHAOS_INNER"
CHAOS_ENV_EMBED_FAILURES = "REPRO_CHAOS_EMBED_FAILURES"
CHAOS_ENV_EMBED_LATENCY_MS = "REPRO_CHAOS_EMBED_LATENCY_MS"
CHAOS_ENV_SEED = "REPRO_CHAOS_SEED"


def chaos_embedder_from_env(**kwargs: object) -> FaultyEmbedder:
    """Build the ``"chaos"`` registry embedder from ``REPRO_CHAOS_*`` vars.

    ``REPRO_CHAOS_INNER`` — inner embedder registry name (default
    ``"mistral"``); ``kwargs`` pass through to its factory.
    ``REPRO_CHAOS_EMBED_FAILURES`` — ``"all"`` (hard-down), a
    ``"n:period"`` fail-cycle (e.g. ``"2:3"``), or comma-separated call
    indices (e.g. ``"0,1,4"``); empty/unset injects nothing.
    ``REPRO_CHAOS_EMBED_LATENCY_MS`` — constant per-call latency.
    ``REPRO_CHAOS_SEED`` — the injector seed (default 0).

    Both ``embed`` and ``embed_many`` get the same schedule.  This is how
    the service smoke test boots a ``repro serve`` subprocess against a
    failing backend without any IPC.
    """
    from repro.embeddings.registry import EMBEDDERS

    inner_name = os.environ.get(CHAOS_ENV_INNER, "mistral")
    inner = EMBEDDERS.create(inner_name, **kwargs)
    injector = FaultInjector(seed=int(os.environ.get(CHAOS_ENV_SEED, "0") or 0))
    spec = os.environ.get(CHAOS_ENV_EMBED_FAILURES, "").strip()
    latency = float(os.environ.get(CHAOS_ENV_EMBED_LATENCY_MS, "0") or 0.0)
    schedule: Dict[str, object] = {"constant_latency_ms": latency}
    if spec.lower() == "all":
        schedule["fail_all"] = True
    elif ":" in spec:
        failures, period = spec.split(":", 1)
        schedule["fail_cycle"] = (int(failures), int(period))
    elif spec:
        schedule["fail_calls"] = frozenset(int(token) for token in spec.split(","))
    if spec or latency > 0:
        injector.script("embed", **schedule)
        injector.script("embed_many", **schedule)
    return FaultyEmbedder(inner, injector)
