"""Deterministic fault injection for chaos testing (see :mod:`.faults`)."""

from repro.testing.faults import (
    FaultInjector,
    FaultyEmbedder,
    FaultyStore,
    TransientFault,
    chaos_embedder_from_env,
    corrupt_array_file,
    crash_once,
)

__all__ = [
    "FaultInjector",
    "FaultyEmbedder",
    "FaultyStore",
    "TransientFault",
    "chaos_embedder_from_env",
    "corrupt_array_file",
    "crash_once",
]
