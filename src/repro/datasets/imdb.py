"""Synthetic IMDB benchmark (runtime / scalability, Figure 3).

ALITE's efficiency benchmark samples rows from the public IMDB data dumps
(6 tables, ~106M tuples in total) to build integration sets with 5K–30K input
tuples and measures Full Disjunction runtime.  The dumps are not available
offline, so this generator builds relationally-consistent tables in the same
schema: ``title_basics``, ``title_ratings``, ``title_akas``,
``title_principals``, ``name_basics`` and ``title_crew``, linked by ``tconst``
(title key) and ``nconst`` (person key).  Like the original, it is an
*equi-join* benchmark — there are no fuzzy inconsistencies — which is exactly
what Figure 3 needs: the Fuzzy FD's Match Values component must still scan for
fuzzy matches, and the experiment shows that this adds no significant
overhead over regular FD.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.datasets.vocabularies import topic_vocabulary
from repro.table.nulls import NULL
from repro.table.table import Table

_TITLE_TYPES = ["movie", "tvSeries", "short", "tvMovie", "documentary"]
_GENRES = ["Drama", "Comedy", "Action", "Thriller", "Romance", "Documentary", "Horror", "Sci-Fi"]
_CATEGORIES = ["actor", "actress", "director", "writer", "producer", "composer"]
_PROFESSIONS = ["actor", "actress", "director", "writer", "producer", "cinematographer"]
_REGIONS = ["US", "GB", "DE", "FR", "ES", "IT", "IN", "JP", "BR", "CA"]

#: Approximate share of the total tuple budget allotted to each table.
_TABLE_SHARES: Dict[str, float] = {
    "title_basics": 0.19,
    "title_ratings": 0.15,
    "title_akas": 0.12,
    "title_principals": 0.28,
    "name_basics": 0.15,
    "title_crew": 0.11,
}


class ImdbBenchmark:
    """Deterministic generator of IMDB-schema integration sets.

    ``tables(total_tuples)`` returns the 6 tables sized so that the *total*
    number of input tuples is approximately ``total_tuples`` — the quantity on
    the X axis of the paper's Figure 3.
    """

    def __init__(self, seed: int = 13) -> None:
        self.seed = seed

    # -- public API -----------------------------------------------------------------
    def tables(self, total_tuples: int) -> List[Table]:
        """Generate the 6 IMDB tables totalling ≈ ``total_tuples`` rows."""
        if total_tuples < 12:
            raise ValueError("total_tuples must be at least 12")
        rng = random.Random(self.seed * 104_729 + total_tuples)

        n_basics = max(2, int(total_tuples * _TABLE_SHARES["title_basics"]))
        n_ratings = max(1, int(total_tuples * _TABLE_SHARES["title_ratings"]))
        n_akas = max(1, int(total_tuples * _TABLE_SHARES["title_akas"]))
        n_principals = max(2, int(total_tuples * _TABLE_SHARES["title_principals"]))
        n_names = max(2, int(total_tuples * _TABLE_SHARES["name_basics"]))
        n_crew = max(1, int(total_tuples * _TABLE_SHARES["title_crew"]))

        titles = [f"tt{index:07d}" for index in range(n_basics)]
        people = [f"nm{index:07d}" for index in range(n_names)]
        movie_names = self._movie_titles(n_basics, rng)
        person_names = self._person_names(n_names, rng)

        tables = [
            self._title_basics(titles, movie_names, rng),
            self._title_ratings(titles[:n_ratings], rng),
            self._title_akas(titles, n_akas, movie_names, rng),
            self._title_principals(titles, people, n_principals, rng),
            self._name_basics(people, person_names, rng),
            self._title_crew(titles[:n_crew], people, rng),
        ]
        return tables

    def sweep_sizes(self, start: int = 5_000, stop: int = 30_000, step: int = 5_000) -> List[int]:
        """The input-tuple counts of the paper's Figure 3 sweep."""
        return list(range(start, stop + 1, step))

    # -- table builders ----------------------------------------------------------------
    @staticmethod
    def _movie_titles(count: int, rng: random.Random) -> List[str]:
        base = topic_vocabulary("movies").entities
        return [f"{base[index % len(base)]} {index // len(base) + 1}" for index in range(count)]

    @staticmethod
    def _person_names(count: int, rng: random.Random) -> List[str]:
        base = topic_vocabulary("athletes").entities
        return [f"{base[index % len(base)]} {index // len(base) + 1}" for index in range(count)]

    @staticmethod
    def _title_basics(
        titles: Sequence[str], movie_names: Sequence[str], rng: random.Random
    ) -> Table:
        rows = []
        for index, tconst in enumerate(titles):
            rows.append(
                (
                    tconst,
                    movie_names[index],
                    rng.choice(_TITLE_TYPES),
                    str(rng.randrange(1950, 2025)),
                    str(rng.randrange(40, 200)),
                    rng.choice(_GENRES),
                )
            )
        return Table(
            "title_basics",
            ["tconst", "primaryTitle", "titleType", "startYear", "runtimeMinutes", "genres"],
            rows,
        )

    @staticmethod
    def _title_ratings(titles: Sequence[str], rng: random.Random) -> Table:
        rows = [
            (tconst, f"{rng.uniform(1.0, 10.0):.1f}", str(rng.randrange(10, 2_000_000)))
            for tconst in titles
        ]
        return Table("title_ratings", ["tconst", "averageRating", "numVotes"], rows)

    @staticmethod
    def _title_akas(
        titles: Sequence[str], count: int, movie_names: Sequence[str], rng: random.Random
    ) -> Table:
        rows = []
        for index in range(count):
            title_index = rng.randrange(len(titles))
            rows.append(
                (
                    titles[title_index],
                    f"{movie_names[title_index]} ({rng.choice(_REGIONS)})",
                    rng.choice(_REGIONS),
                )
            )
        return Table("title_akas", ["tconst", "akaTitle", "region"], rows)

    @staticmethod
    def _title_principals(
        titles: Sequence[str], people: Sequence[str], count: int, rng: random.Random
    ) -> Table:
        rows = []
        for _ in range(count):
            rows.append(
                (
                    rng.choice(titles),
                    rng.choice(people),
                    rng.choice(_CATEGORIES),
                )
            )
        return Table("title_principals", ["tconst", "nconst", "category"], rows)

    @staticmethod
    def _name_basics(people: Sequence[str], person_names: Sequence[str], rng: random.Random) -> Table:
        rows = []
        for index, nconst in enumerate(people):
            birth_year = str(rng.randrange(1920, 2005)) if rng.random() > 0.1 else NULL
            rows.append((nconst, person_names[index], birth_year, rng.choice(_PROFESSIONS)))
        return Table(
            "name_basics", ["nconst", "primaryName", "birthYear", "primaryProfession"], rows
        )

    @staticmethod
    def _title_crew(titles: Sequence[str], people: Sequence[str], rng: random.Random) -> Table:
        rows = [(tconst, rng.choice(people)) for tconst in titles]
        return Table("title_crew", ["tconst", "directorNconst"], rows)
