"""Value corruption generators.

The fuzzy inconsistencies the paper targets — typos, case changes,
abbreviations, synonyms, reformatting — are produced here deterministically
from a seeded RNG.  A :class:`CorruptionProfile` describes the mix of
corruption kinds one benchmark integration set applies (the Auto-Join
benchmark's 31 sets exhibit different mixes: some are abbreviation joins, some
are typo joins, some are format joins), and a :class:`Corruptor` applies a
profile to individual values while remembering nothing — ground truth is the
caller's responsibility, which keeps the generators honest.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.embeddings.lexicon import SemanticLexicon, default_lexicon
from repro.utils.text import tokenize

CorruptionKind = str

#: The corruption kinds the generators know about.
CORRUPTION_KINDS: Tuple[CorruptionKind, ...] = (
    "identity",
    "typo",
    "case",
    "abbreviation",
    "synonym",
    "format",
    "prefix_suffix",
    "hard",
)


@dataclass(frozen=True)
class CorruptionProfile:
    """A weighted mix of corruption kinds.

    The weights need not sum to one; they are normalised when sampling.
    """

    name: str
    weights: Dict[CorruptionKind, float]

    def kinds(self) -> List[CorruptionKind]:
        """The kinds with positive weight."""
        return [kind for kind, weight in self.weights.items() if weight > 0]

    def sample_kind(self, rng: random.Random) -> CorruptionKind:
        """Sample one corruption kind according to the weights."""
        kinds = list(self.weights)
        weights = [max(0.0, self.weights[kind]) for kind in kinds]
        total = sum(weights)
        if total <= 0:
            return "identity"
        return rng.choices(kinds, weights=weights, k=1)[0]


#: Profiles modelled after the classes of joins in the Auto-Join benchmark.
#: Every profile carries a small share of "hard" corruptions (multiple edits,
#: initialisms of names the lexicon does not know) — the real benchmark also
#: contains pairs no embedding model resolves, which caps achievable recall.
DEFAULT_PROFILES: Tuple[CorruptionProfile, ...] = (
    CorruptionProfile("typos", {"typo": 0.55, "case": 0.2, "identity": 0.15, "hard": 0.1}),
    CorruptionProfile("casing", {"case": 0.6, "identity": 0.25, "typo": 0.05, "hard": 0.1}),
    CorruptionProfile(
        "abbreviations", {"abbreviation": 0.6, "identity": 0.2, "case": 0.08, "hard": 0.12}
    ),
    CorruptionProfile(
        "synonyms", {"synonym": 0.45, "abbreviation": 0.2, "identity": 0.23, "hard": 0.12}
    ),
    CorruptionProfile(
        "formatting", {"format": 0.45, "prefix_suffix": 0.2, "identity": 0.25, "hard": 0.1}
    ),
    CorruptionProfile(
        "mixed",
        {
            "typo": 0.18,
            "case": 0.13,
            "abbreviation": 0.22,
            "format": 0.13,
            "prefix_suffix": 0.09,
            "identity": 0.13,
            "hard": 0.12,
        },
    ),
)


class Corruptor:
    """Applies corruption kinds to values, deterministically per seed."""

    def __init__(self, lexicon: Optional[SemanticLexicon] = None, seed: int = 0) -> None:
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self._rng = random.Random(seed)
        self._handlers: Dict[CorruptionKind, Callable[[str, random.Random], str]] = {
            "identity": lambda value, rng: value,
            "typo": self._typo,
            "case": self._case,
            "abbreviation": self._abbreviation,
            "synonym": self._synonym,
            "format": self._format,
            "prefix_suffix": self._prefix_suffix,
            "hard": self._hard,
        }

    # -- public API ----------------------------------------------------------------
    def corrupt(self, value: str, kind: CorruptionKind, rng: Optional[random.Random] = None) -> str:
        """Apply one corruption kind to ``value`` (never returns an empty string)."""
        rng = rng if rng is not None else self._rng
        handler = self._handlers.get(kind)
        if handler is None:
            raise ValueError(f"unknown corruption kind {kind!r}; known: {CORRUPTION_KINDS}")
        corrupted = handler(str(value), rng)
        return corrupted if corrupted.strip() else str(value)

    def corrupt_with_profile(
        self, value: str, profile: CorruptionProfile, rng: Optional[random.Random] = None
    ) -> Tuple[str, CorruptionKind]:
        """Apply a profile-sampled corruption; returns (corrupted value, kind used)."""
        rng = rng if rng is not None else self._rng
        kind = profile.sample_kind(rng)
        return self.corrupt(value, kind, rng), kind

    # -- corruption kinds -------------------------------------------------------------
    @staticmethod
    def _typo(value: str, rng: random.Random) -> str:
        """One character-level edit: duplicate, delete, swap or replace."""
        if len(value) < 3:
            return value + value[-1]
        position = rng.randrange(1, len(value) - 1)
        operation = rng.choice(("duplicate", "delete", "swap", "replace"))
        characters = list(value)
        if operation == "duplicate":
            characters.insert(position, characters[position])
        elif operation == "delete":
            del characters[position]
        elif operation == "swap":
            characters[position], characters[position - 1] = (
                characters[position - 1],
                characters[position],
            )
        else:
            replacement = rng.choice(string.ascii_lowercase)
            characters[position] = replacement
        return "".join(characters)

    @staticmethod
    def _case(value: str, rng: random.Random) -> str:
        """Change the letter case of the whole value."""
        choice = rng.choice(("lower", "upper", "title", "first_lower"))
        if choice == "lower":
            return value.lower()
        if choice == "upper":
            return value.upper()
        if choice == "title":
            return value.title()
        return value[:1].lower() + value[1:]

    def _abbreviation(self, value: str, rng: random.Random) -> str:
        """Replace the value (or one of its tokens) with a known abbreviation.

        Falls back to an initialism (multi-token values) or a truncated prefix
        when the lexicon has no form for the value.
        """
        concept = self.lexicon.lookup(value)
        if concept is not None:
            alternatives = [form for form in self.lexicon.forms(concept) if form != str(value).lower()]
            if alternatives:
                return rng.choice(sorted(alternatives))
        tokens = value.split()
        # Token-level abbreviation (e.g. "Main Street" -> "Main St").
        for index, token in enumerate(tokens):
            token_concept = self.lexicon.lookup(token)
            if token_concept is not None:
                forms = [form for form in self.lexicon.forms(token_concept) if form != token.lower()]
                short_forms = [form for form in forms if len(form) < len(token)]
                if short_forms:
                    replaced = list(tokens)
                    replaced[index] = rng.choice(sorted(short_forms))
                    return " ".join(replaced)
        if len(tokens) >= 2:
            return "".join(token[0].upper() for token in tokens if token)
        if len(value) > 5:
            return value[: max(3, len(value) // 2)] + "."
        return value

    def _synonym(self, value: str, rng: random.Random) -> str:
        """Replace the value with another surface form of the same concept."""
        concept = self.lexicon.lookup(value)
        if concept is None:
            # Token-level synonym replacement.
            tokens = value.split()
            for index, token in enumerate(tokens):
                token_concept = self.lexicon.lookup(token)
                if token_concept is not None:
                    forms = [form for form in self.lexicon.forms(token_concept) if form != token.lower()]
                    if forms:
                        replaced = list(tokens)
                        replaced[index] = rng.choice(sorted(forms))
                        return " ".join(replaced)
            return self._case(value, rng)
        alternatives = [form for form in self.lexicon.forms(concept) if form != str(value).lower()]
        if not alternatives:
            return value
        return rng.choice(sorted(alternatives))

    @staticmethod
    def _format(value: str, rng: random.Random) -> str:
        """Reformat the value: reorder tokens, change separators, add punctuation."""
        tokens = value.split()
        choice = rng.choice(("comma_reorder", "hyphenate", "underscore", "strip_punct", "squeeze"))
        if choice == "comma_reorder" and len(tokens) >= 2:
            return f"{tokens[-1]}, {' '.join(tokens[:-1])}"
        if choice == "hyphenate" and len(tokens) >= 2:
            return "-".join(tokens)
        if choice == "underscore" and len(tokens) >= 2:
            return "_".join(tokens)
        if choice == "strip_punct":
            stripped = "".join(ch for ch in value if ch.isalnum() or ch.isspace())
            return stripped or value
        return "".join(tokens) if len(tokens) >= 2 else value

    def _hard(self, value: str, rng: random.Random) -> str:
        """A corruption no surface or lexicon knowledge resolves reliably.

        Used to model the share of genuinely unresolvable pairs real fuzzy-join
        benchmarks contain: initialisms of out-of-lexicon names, or several
        stacked character edits.
        """
        tokens = value.split()
        if len(tokens) >= 2 and rng.random() < 0.5 and self.lexicon.lookup(value) is None:
            return "".join(token[0].upper() for token in tokens if token)
        corrupted = value
        for _ in range(3):
            corrupted = self._typo(corrupted, rng)
        return corrupted

    @staticmethod
    def _prefix_suffix(value: str, rng: random.Random) -> str:
        """Add a small prefix or suffix (articles, qualifiers, years)."""
        choice = rng.choice(("the", "year", "qualifier", "trim_article"))
        if choice == "the" and not value.lower().startswith("the "):
            return f"The {value}"
        if choice == "year":
            return f"{value} ({rng.randrange(1960, 2025)})"
        if choice == "qualifier":
            return f"{value} {rng.choice(('Jr.', 'II', 'Inc', 'City'))}"
        if value.lower().startswith("the "):
            return value[4:]
        return f"{value} ({rng.randrange(1960, 2025)})"
