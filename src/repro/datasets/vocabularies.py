"""Topic vocabularies used by the synthetic benchmark generators.

The Auto-Join benchmark covers 17 topics (songs, government officials, ...).
Each topic here provides a pool of realistic entity surface forms: some pools
are hard-coded (cities, chemical elements), most are expanded combinatorially
from smaller word pools with a seeded RNG so that hundreds of distinct,
plausible values are available per topic without shipping large data files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.embeddings.lexicon import domain_groups

_CITIES = [
    "Berlin", "Toronto", "Barcelona", "New Delhi", "Boston", "Madrid", "Paris", "London",
    "Rome", "Vienna", "Prague", "Lisbon", "Dublin", "Amsterdam", "Brussels", "Zurich",
    "Geneva", "Munich", "Hamburg", "Frankfurt", "Stuttgart", "Cologne", "Warsaw", "Krakow",
    "Budapest", "Athens", "Stockholm", "Oslo", "Copenhagen", "Helsinki", "Reykjavik",
    "Moscow", "Kyiv", "Istanbul", "Ankara", "Cairo", "Casablanca", "Lagos", "Nairobi",
    "Cape Town", "Johannesburg", "Tel Aviv", "Dubai", "Doha", "Riyadh", "Mumbai",
    "Chennai", "Bangalore", "Kolkata", "Karachi", "Dhaka", "Bangkok", "Hanoi", "Singapore",
    "Kuala Lumpur", "Jakarta", "Manila", "Tokyo", "Osaka", "Kyoto", "Seoul", "Busan",
    "Beijing", "Shanghai", "Shenzhen", "Hong Kong", "Taipei", "Sydney", "Melbourne",
    "Brisbane", "Perth", "Auckland", "Wellington", "Vancouver", "Montreal", "Ottawa",
    "Calgary", "Edmonton", "New York", "Los Angeles", "Chicago", "Houston", "Phoenix",
    "Philadelphia", "San Antonio", "San Diego", "Dallas", "Austin", "Seattle", "Denver",
    "Detroit", "Atlanta", "Miami", "Minneapolis", "Portland", "Baltimore", "Milwaukee",
    "Kansas City", "Sacramento", "Mexico City", "Guadalajara", "Bogota", "Lima", "Santiago",
    "Buenos Aires", "Sao Paulo", "Rio de Janeiro", "Brasilia", "Montevideo", "Quito",
]

_CHEMICAL_ELEMENTS = [
    "Hydrogen", "Helium", "Lithium", "Beryllium", "Boron", "Carbon", "Nitrogen", "Oxygen",
    "Fluorine", "Neon", "Sodium", "Magnesium", "Aluminium", "Silicon", "Phosphorus",
    "Sulfur", "Chlorine", "Argon", "Potassium", "Calcium", "Scandium", "Titanium",
    "Vanadium", "Chromium", "Manganese", "Iron", "Cobalt", "Nickel", "Copper", "Zinc",
    "Gallium", "Germanium", "Arsenic", "Selenium", "Bromine", "Krypton", "Rubidium",
    "Strontium", "Yttrium", "Zirconium", "Niobium", "Molybdenum", "Silver", "Cadmium",
    "Indium", "Tin", "Antimony", "Tellurium", "Iodine", "Xenon", "Cesium", "Barium",
    "Tungsten", "Platinum", "Gold", "Mercury", "Thallium", "Lead", "Bismuth", "Uranium",
]

_PROGRAMMING_LANGUAGES = [
    "Python", "Java", "JavaScript", "TypeScript", "Rust", "Go", "Kotlin", "Swift",
    "Scala", "Haskell", "Erlang", "Elixir", "Clojure", "Ruby", "Perl", "PHP",
    "Fortran", "Cobol", "Pascal", "Ada", "Prolog", "Lisp", "Scheme", "Julia",
    "Matlab", "Octave", "Lua", "Groovy", "Dart", "Objective-C", "Visual Basic",
    "Assembly", "Bash", "PowerShell", "SQL", "Smalltalk", "OCaml", "Racket",
]

_DISEASES = [
    "Influenza", "Measles", "Mumps", "Rubella", "Polio", "Tetanus", "Diphtheria",
    "Pertussis", "Hepatitis A", "Hepatitis B", "Hepatitis C", "Tuberculosis", "Malaria",
    "Dengue Fever", "Yellow Fever", "Cholera", "Typhoid Fever", "Pneumonia", "Bronchitis",
    "Asthma", "Diabetes", "Hypertension", "Arthritis", "Osteoporosis", "Anemia",
    "Leukemia", "Lymphoma", "Melanoma", "Glaucoma", "Cataract", "Migraine", "Epilepsy",
    "Parkinson Disease", "Alzheimer Disease", "Multiple Sclerosis", "Chickenpox",
]

_FIRST_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda",
    "William", "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Nancy", "Daniel", "Lisa",
    "Matthew", "Margaret", "Anthony", "Betty", "Mark", "Sandra", "Donald", "Ashley",
    "Steven", "Dorothy", "Paul", "Kimberly", "Andrew", "Emily", "Joshua", "Donna",
    "Kenneth", "Michelle", "Kevin", "Carol", "Brian", "Amanda", "George", "Melissa",
    "Aamod", "Roee", "Renee", "Wolfgang", "Grace", "Fatemeh", "Erkang", "Yuliang",
]

_LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
    "White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
    "Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Khatiwada", "Shraga", "Miller", "Gatterbauer", "Nargesian",
]

_COMPANY_WORDS = [
    "Global", "United", "National", "Advanced", "Pacific", "Atlantic", "Northern",
    "Southern", "Eastern", "Western", "Pioneer", "Summit", "Apex", "Vertex", "Quantum",
    "Stellar", "Crystal", "Golden", "Silver", "Iron", "Granite", "Evergreen", "Horizon",
    "Liberty", "Heritage", "Keystone", "Beacon", "Anchor", "Compass", "Meridian",
]

_COMPANY_SECTORS = [
    "Data", "Energy", "Logistics", "Materials", "Dynamics", "Systems", "Solutions",
    "Networks", "Industries", "Holdings", "Partners", "Ventures", "Analytics",
    "Robotics", "Software", "Pharmaceuticals", "Aerospace", "Motors", "Foods",
    "Textiles", "Semiconductors", "Biotech",
]

_SONG_ADJECTIVES = [
    "Midnight", "Golden", "Broken", "Silent", "Electric", "Crimson", "Endless", "Lonely",
    "Wild", "Frozen", "Burning", "Distant", "Fading", "Hollow", "Neon", "Paper",
    "Silver", "Velvet", "Wicked", "Restless", "Shattered", "Tangled", "Gentle",
]

_SONG_NOUNS = [
    "River", "Heart", "Sky", "Road", "Dream", "Fire", "Rain", "Shadow", "Echo",
    "Summer", "Winter", "Ocean", "Mountain", "Star", "Moon", "Sun", "Storm",
    "Garden", "Window", "Mirror", "Train", "Highway", "Harbor", "Lantern",
]

_MOVIE_NOUNS = [
    "Empire", "Return", "Legacy", "Chronicles", "Awakening", "Reckoning", "Journey",
    "Secret", "Promise", "Covenant", "Paradox", "Labyrinth", "Odyssey", "Requiem",
    "Masquerade", "Expedition", "Uprising", "Sanctuary", "Eclipse", "Horizon",
]

_MOUNTAIN_NAMES = [
    "Everest", "Kilimanjaro", "Denali", "Rainier", "Whitney", "Elbert", "Hood",
    "Shasta", "Olympus", "Fuji", "Blanc", "Matterhorn", "Aconcagua", "Logan",
    "Vinson", "Kosciuszko", "Etna", "Vesuvius", "Ararat", "Kenya",
]

_LAKE_NAMES = [
    "Superior", "Michigan", "Huron", "Erie", "Ontario", "Victoria", "Tanganyika",
    "Baikal", "Geneva", "Como", "Garda", "Titicaca", "Champlain", "Tahoe",
    "Placid", "Powell", "Mead", "Okeechobee", "Winnipeg", "Ladoga",
]

_NEWSPAPER_SUFFIXES = ["Times", "Herald", "Post", "Tribune", "Gazette", "Chronicle", "Courier", "Observer"]
_BANK_SUFFIXES = ["Bank", "Savings Bank", "Trust", "Financial Group", "Credit Union"]
_CAR_BRANDS = [
    "Ford", "Toyota", "Honda", "Chevrolet", "Nissan", "Volkswagen", "Hyundai", "Kia",
    "Subaru", "Mazda", "Volvo", "Audi", "Porsche", "Jaguar", "Fiat", "Renault",
]
_CAR_MODELS = [
    "Falcon", "Summit", "Voyager", "Pioneer", "Ranger", "Explorer", "Aurora", "Comet",
    "Meteor", "Phantom", "Spirit", "Legend", "Vista", "Horizon", "Pulse", "Nova",
]


@dataclass
class Vocabulary:
    """A pool of distinct entity surface forms for one topic."""

    topic: str
    entities: List[str]

    def sample(self, count: int, seed: int = 0) -> List[str]:
        """Deterministically sample up to ``count`` distinct entities."""
        rng = random.Random(seed)
        if count >= len(self.entities):
            return list(self.entities)
        return rng.sample(self.entities, count)

    def __len__(self) -> int:
        return len(self.entities)


def _person_names(rng: random.Random, count: int) -> List[str]:
    names = set()
    while len(names) < count:
        names.add(f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}")
    return sorted(names)


def _combinations(rng: random.Random, count: int, left: Sequence[str], right: Sequence[str],
                  pattern: str = "{left} {right}") -> List[str]:
    values = set()
    attempts = 0
    while len(values) < count and attempts < count * 50:
        attempts += 1
        values.add(pattern.format(left=rng.choice(list(left)), right=rng.choice(list(right))))
    return sorted(values)


#: Topics whose entities are (or contain) concepts the semantic lexicon knows —
#: abbreviation and synonym corruptions over these are resolvable only with
#: semantic knowledge, which is where the LLM embedders pull ahead in Table 1.
SEMANTIC_TOPICS = (
    "countries",
    "us_states",
    "universities",
    "organizations",
    "currencies",
    "measurement_units",
    "music_genres",
    "academic_degrees",
    "departments",
    "street_addresses",
    "government_officials",
    "companies",
)

#: Topics whose entities are arbitrary strings — only surface-level
#: corruptions (typos, casing, formatting) apply to them.
SURFACE_TOPICS = (
    "cities",
    "chemical_elements",
    "programming_languages",
    "diseases",
    "athletes",
    "musicians",
    "songs",
    "movies",
    "airports",
    "car_models",
    "newspapers",
    "banks",
    "mountains",
    "lakes",
)


def _street_addresses(rng: random.Random, count: int) -> List[str]:
    suffixes = ["Street", "Avenue", "Boulevard", "Road", "Drive", "Lane", "Court", "Parkway"]
    names = _LAST_NAMES + _COMPANY_WORDS + _MOUNTAIN_NAMES
    addresses = set()
    while len(addresses) < count:
        addresses.add(f"{rng.randrange(1, 999)} {rng.choice(names)} {rng.choice(suffixes)}")
    return sorted(addresses)


def _build_topics(seed: int = 7, pool_size: int = 400) -> Dict[str, List[str]]:
    rng = random.Random(seed)
    domains = domain_groups()
    countries = sorted(domains["countries"])
    states = sorted(domains["us_states"])
    universities = sorted(domains["universities"])
    organizations = sorted(domains["organizations"])
    currencies = sorted(domains["currencies"])
    units = sorted(domains["units"])
    genres = sorted(domains["genres"])
    degrees = sorted(domains["degrees"])
    departments = sorted(domains["departments"])
    titles = sorted(domains["titles"])
    company_suffixes = sorted(domains["company_suffixes"])

    officials = [
        f"{title.title()} {name}"
        for title, name in zip(
            [rng.choice(titles) for _ in range(pool_size)],
            _person_names(rng, pool_size),
        )
    ]
    companies = [
        f"{base} {rng.choice(company_suffixes).title()}"
        for base in _combinations(rng, pool_size, _COMPANY_WORDS, _COMPANY_SECTORS)
    ]

    topics: Dict[str, List[str]] = {
        # Semantic topics (lexicon-backed).
        "countries": [c.title() for c in countries],
        "us_states": [s.title() for s in states],
        "universities": [u.title() for u in universities],
        "organizations": [o.title() for o in organizations],
        "currencies": [c.title() for c in currencies],
        "measurement_units": [u.title() for u in units],
        "music_genres": [g.title() for g in genres],
        "academic_degrees": [d.title() for d in degrees],
        "departments": [d.title() for d in departments],
        "street_addresses": _street_addresses(rng, 250),
        "government_officials": sorted(set(officials)),
        "companies": sorted(set(companies)),
        # Surface topics (arbitrary strings).
        "cities": list(_CITIES),
        "chemical_elements": list(_CHEMICAL_ELEMENTS),
        "programming_languages": list(_PROGRAMMING_LANGUAGES),
        "diseases": list(_DISEASES),
        "athletes": _person_names(random.Random(seed + 1), pool_size),
        "musicians": _person_names(random.Random(seed + 2), pool_size),
        "songs": _combinations(rng, pool_size, _SONG_ADJECTIVES, _SONG_NOUNS),
        "movies": _combinations(rng, pool_size, _SONG_ADJECTIVES + ["The Last", "The First"], _MOVIE_NOUNS),
        "airports": [f"{city} International Airport" for city in _CITIES[:120]],
        "car_models": _combinations(rng, pool_size, _CAR_BRANDS, _CAR_MODELS),
        "newspapers": _combinations(rng, 200, _CITIES, _NEWSPAPER_SUFFIXES),
        "banks": _combinations(rng, 200, _COMPANY_WORDS + _CITIES[:40], _BANK_SUFFIXES),
        "mountains": [f"Mount {name}" for name in _MOUNTAIN_NAMES]
        + [f"{name} Peak" for name in _COMPANY_WORDS[:20]],
        "lakes": [f"Lake {name}" for name in _LAKE_NAMES]
        + [f"Lake {name}" for name in _LAST_NAMES[:30]],
    }
    return topics


_TOPIC_CACHE: Dict[str, List[str]] | None = None


def _topics() -> Dict[str, List[str]]:
    global _TOPIC_CACHE
    if _TOPIC_CACHE is None:
        _TOPIC_CACHE = _build_topics()
    return _TOPIC_CACHE


def topic_names() -> List[str]:
    """The available topic names (more than the paper's 17; generators pick 17)."""
    return sorted(_topics())


def topic_category(topic: str) -> str:
    """``"semantic"`` for lexicon-backed topics, ``"surface"`` otherwise."""
    if topic in SEMANTIC_TOPICS:
        return "semantic"
    if topic in SURFACE_TOPICS:
        return "surface"
    raise ValueError(f"unknown topic {topic!r}; available: {topic_names()}")


def topic_vocabulary(topic: str) -> Vocabulary:
    """The vocabulary of one topic.

    >>> topic_vocabulary("cities").topic
    'cities'
    """
    topics = _topics()
    if topic not in topics:
        raise ValueError(f"unknown topic {topic!r}; available: {topic_names()}")
    return Vocabulary(topic=topic, entities=list(topics[topic]))
