"""Synthetic ALITE entity-matching benchmark.

ALITE's effectiveness study uses open-data integration sets with gold entity
labels: the same real-world entity is described by tuples scattered over
several tables, with the usual data-lake value inconsistencies.  This
generator reproduces the structure with *organisation* entities
(institutions, agencies, companies) whose names and locations admit exactly
the inconsistencies the paper's Fuzzy FD targets: official names vs.
initialisms ("World Health Organization" / "WHO"), country names vs. codes,
abbreviated corporate suffixes, typos and case changes.  Each integration set
contains a handful of tables (each covering a subset of the entities and a
subset of the attributes); the gold clusters group the source tuple ids
(``table:row``) that describe the same entity.

The downstream experiment integrates each set twice (regular FD and Fuzzy FD),
runs entity matching over the two integrated tables, and compares pairwise
precision/recall/F1 against the gold clusters: values regular FD leaves
unmatched produce partial tuples that the entity matcher mis-handles, which is
the effect the paper reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.corruptions import CorruptionProfile, Corruptor
from repro.embeddings.lexicon import domain_groups
from repro.table.nulls import NULL
from repro.table.table import Table


@dataclass
class EmIntegrationSet:
    """One entity-matching integration set: tables plus gold entity clusters."""

    name: str
    tables: List[Table]
    gold_clusters: List[List[str]] = field(default_factory=list)

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across the input tables."""
        return sum(table.num_rows for table in self.tables)

    def multi_table_entities(self) -> int:
        """Number of gold entities described by more than one source tuple."""
        return sum(1 for cluster in self.gold_clusters if len(cluster) > 1)


_CITIES = [
    "Geneva", "Boston", "Toronto", "Berlin", "Paris", "London", "Vienna", "Madrid",
    "Brussels", "Rome", "Zurich", "Chicago", "Seattle", "Austin", "Atlanta",
    "Washington", "New York", "Ottawa", "Cambridge", "Pittsburgh",
]
_CITY_COUNTRY = {
    "Geneva": "Switzerland", "Boston": "United States", "Toronto": "Canada",
    "Berlin": "Germany", "Paris": "France", "London": "United Kingdom",
    "Vienna": "Austria", "Madrid": "Spain", "Brussels": "Belgium", "Rome": "Italy",
    "Zurich": "Switzerland", "Chicago": "United States", "Seattle": "United States",
    "Austin": "United States", "Atlanta": "United States", "Washington": "United States",
    "New York": "United States", "Ottawa": "Canada", "Cambridge": "United States",
    "Pittsburgh": "United States",
}
_SECTORS = ["Public Health", "Research", "Education", "Finance", "Technology", "Sports", "Trade"]
_COMPANY_BASES = [
    "Global Data", "Pioneer Analytics", "Summit Robotics", "Northern Logistics",
    "Crystal Software", "Evergreen Pharmaceuticals", "Horizon Aerospace",
    "Keystone Motors", "Beacon Financial", "Quantum Semiconductors",
    "Stellar Foods", "Granite Materials", "Meridian Networks", "Anchor Shipping",
    "Compass Ventures", "Liberty Textiles", "Heritage Banking", "Apex Dynamics",
]
_COMPANY_SUFFIXES = ["Incorporated", "Corporation", "Limited", "Group"]


@dataclass
class _Entity:
    """One synthetic organisation entity with its canonical attribute values."""

    identifier: str
    name: str
    city: str
    country: str
    sector: str
    employees: int

    def attribute(self, column: str) -> object:
        values = {
            "Name": self.name,
            "City": self.city,
            "Country": self.country,
            "Sector": self.sector,
            "Employees": str(self.employees),
        }
        return values[column]


class AliteEmBenchmark:
    """Deterministic generator of entity-matching integration sets.

    Parameters
    ----------
    n_sets:
        Number of integration sets.
    entities_per_set:
        Number of distinct entities per set (capped by the organisation pool).
    tables_per_set:
        Number of tables the entities are scattered over.
    multi_table_fraction:
        Fraction of entities that appear in more than one table (and therefore
        form non-trivial gold clusters).
    corruption_fraction:
        Probability that a textual value in a non-primary table is replaced by
        a fuzzy variant (abbreviation, code, typo, case change, ...).
    seed:
        RNG seed.
    """

    #: Schema of each generated table: a subset of these attributes.
    ATTRIBUTES = ["Name", "City", "Country", "Sector", "Employees"]

    def __init__(
        self,
        n_sets: int = 5,
        entities_per_set: int = 50,
        tables_per_set: int = 3,
        multi_table_fraction: float = 0.7,
        corruption_fraction: float = 0.5,
        seed: int = 7,
    ) -> None:
        if tables_per_set < 2:
            raise ValueError("tables_per_set must be at least 2")
        self.n_sets = n_sets
        self.entities_per_set = entities_per_set
        self.tables_per_set = tables_per_set
        self.multi_table_fraction = multi_table_fraction
        self.corruption_fraction = corruption_fraction
        self.seed = seed
        self._corruptor = Corruptor(seed=seed)
        # Name inconsistencies lean on abbreviations (initialisms, codes) — the
        # class of mismatch that only semantic matching resolves; the remaining
        # textual attributes get a mix that includes surface noise as well.
        self._name_profile = CorruptionProfile(
            "em_names", {"abbreviation": 0.45, "typo": 0.15, "case": 0.15, "identity": 0.25}
        )
        self._value_profile = CorruptionProfile(
            "em_values", {"abbreviation": 0.4, "synonym": 0.1, "case": 0.15, "typo": 0.1, "identity": 0.25}
        )

    # -- public API -------------------------------------------------------------------
    def generate(self) -> List[EmIntegrationSet]:
        """Generate all entity-matching integration sets."""
        return [self._generate_set(index) for index in range(self.n_sets)]

    # -- entity pool -------------------------------------------------------------------
    def _organisation_pool(self) -> List[str]:
        """Canonical organisation names: lexicon concepts plus synthetic companies.

        Lexicon-backed names (agencies, universities) admit initialism
        inconsistencies that only semantic matching resolves; the synthetic
        companies admit suffix abbreviations and surface noise.
        """
        domains = domain_groups()
        names = [concept.title() for concept in sorted(domains["organizations"])]
        names += [concept.title() for concept in sorted(domains["universities"])]
        # Rotate corporate suffixes so companies do not all share a long
        # common token, which would make otherwise-unrelated names look alike.
        names += [
            f"{base} {_COMPANY_SUFFIXES[index % len(_COMPANY_SUFFIXES)]}"
            for index, base in enumerate(_COMPANY_BASES)
        ]
        return names

    def _make_entities(self, rng: random.Random, count: int) -> List[_Entity]:
        pool = self._organisation_pool()
        rng.shuffle(pool)
        entities: List[_Entity] = []
        for index, name in enumerate(pool[: min(count, len(pool))]):
            city = rng.choice(_CITIES)
            entities.append(
                _Entity(
                    identifier=f"e{index:04d}",
                    name=name,
                    city=city,
                    country=_CITY_COUNTRY[city],
                    sector=rng.choice(_SECTORS),
                    employees=rng.randrange(1, 200) * 50,
                )
            )
        return entities

    def _table_schemas(self, rng: random.Random) -> List[List[str]]:
        """Column subsets per table; every table keeps Name (the join attribute)."""
        schemas: List[List[str]] = []
        optional = [column for column in self.ATTRIBUTES if column != "Name"]
        for _ in range(self.tables_per_set):
            count = rng.randrange(2, len(optional) + 1)
            chosen = sorted(rng.sample(optional, count), key=self.ATTRIBUTES.index)
            schemas.append(["Name"] + chosen)
        return schemas

    # -- set generation ------------------------------------------------------------------
    def _generate_set(self, index: int) -> EmIntegrationSet:
        rng = random.Random(self.seed * 7_919 + index)
        set_name = f"alite_em_{index:02d}"
        entities = self._make_entities(rng, self.entities_per_set)
        schemas = self._table_schemas(rng)

        membership: Dict[str, List[int]] = {}
        for entity in entities:
            if rng.random() < self.multi_table_fraction:
                count = rng.randrange(2, self.tables_per_set + 1)
                membership[entity.identifier] = sorted(rng.sample(range(self.tables_per_set), count))
            else:
                membership[entity.identifier] = [rng.randrange(self.tables_per_set)]

        rows_per_table: List[List[Tuple[object, ...]]] = [[] for _ in range(self.tables_per_set)]
        gold: Dict[str, List[str]] = {entity.identifier: [] for entity in entities}
        used_names_per_table: List[Set[str]] = [set() for _ in range(self.tables_per_set)]

        for entity in entities:
            for table_index in membership[entity.identifier]:
                schema = schemas[table_index]
                row: List[object] = []
                for column in schema:
                    value = entity.attribute(column)
                    textual = column in ("Name", "City", "Country", "Sector")
                    if table_index > 0 and textual and rng.random() < self.corruption_fraction:
                        profile = self._name_profile if column == "Name" else self._value_profile
                        value = self._corrupt_unique(
                            str(value),
                            profile,
                            rng,
                            used_names_per_table[table_index] if column == "Name" else None,
                        )
                    if column != "Name" and rng.random() < 0.1:
                        value = NULL
                    row.append(value)
                used_names_per_table[table_index].add(str(row[0]))
                row_id = len(rows_per_table[table_index])
                rows_per_table[table_index].append(tuple(row))
                gold[entity.identifier].append(f"{set_name}_T{table_index}:{row_id}")

        tables = [
            Table(f"{set_name}_T{table_index}", schemas[table_index], rows_per_table[table_index])
            for table_index in range(self.tables_per_set)
        ]
        gold_clusters = [sorted(cluster) for cluster in gold.values() if cluster]
        gold_clusters.sort()
        return EmIntegrationSet(name=set_name, tables=tables, gold_clusters=gold_clusters)

    def _corrupt_unique(
        self,
        value: str,
        profile: CorruptionProfile,
        rng: random.Random,
        used: Optional[Set[str]],
    ) -> str:
        """Corrupt a value, avoiding collisions with other values when requested."""
        for _ in range(5):
            corrupted, _kind = self._corruptor.corrupt_with_profile(value, profile, rng)
            if used is None or corrupted not in used:
                return corrupted
        return value
