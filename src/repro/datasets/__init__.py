"""Benchmark generators.

The paper evaluates on three public resources that require downloads
unavailable in this environment: the Auto-Join benchmark (31 integration sets
of fuzzily-joinable columns over 17 topics), the ALITE open-data benchmark
(with an entity-matching dataset), and an IMDB-based benchmark (6 tables,
samples of 5K–30K tuples) for runtime.  This package generates seeded,
deterministic stand-ins with the same structure and the same corruption
classes (typos, case changes, abbreviations, synonyms, format changes), each
with exact ground truth.  See DESIGN.md ("Substitutions") for the mapping.
"""

from repro.datasets.corruptions import CorruptionProfile, Corruptor
from repro.datasets.vocabularies import Vocabulary, topic_names, topic_vocabulary
from repro.datasets.autojoin import AutoJoinBenchmark, AutoJoinIntegrationSet
from repro.datasets.alite_em import AliteEmBenchmark, EmIntegrationSet
from repro.datasets.imdb import ImdbBenchmark

__all__ = [
    "Vocabulary",
    "topic_names",
    "topic_vocabulary",
    "Corruptor",
    "CorruptionProfile",
    "AutoJoinBenchmark",
    "AutoJoinIntegrationSet",
    "AliteEmBenchmark",
    "EmIntegrationSet",
    "ImdbBenchmark",
]
