"""Synthetic Auto-Join benchmark (fuzzy value matching ground truth).

The real Auto-Join benchmark [Zhu, He, Chaudhuri 2017] ships 31 integration
sets over 17 topics; each set contains columns that join fuzzily
(abbreviations, typos, formatting differences) under the clean-clean
assumption, with roughly 150 values per column.  This generator reproduces
that structure: per integration set it picks a topic and a corruption profile,
emits two or three aligning columns whose values are different surface forms
of the same underlying entities, and records the exact ground-truth match
sets.  The Table 1 benchmark measures value-matching precision/recall/F1 of
each embedding model against this ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.value_matching import ColumnValues
from repro.datasets.corruptions import CorruptionProfile, Corruptor, DEFAULT_PROFILES
from repro.datasets.vocabularies import (
    SEMANTIC_TOPICS,
    SURFACE_TOPICS,
    topic_category,
    topic_vocabulary,
)
from repro.table.table import Table

ValueKey = Tuple[Hashable, object]


@dataclass
class AutoJoinIntegrationSet:
    """One integration set: aligning columns plus ground-truth match sets."""

    name: str
    topic: str
    profile: str
    columns: Dict[Hashable, List[str]]
    gold_sets: List[Set[ValueKey]] = field(default_factory=list)

    def column_values(self) -> List[ColumnValues]:
        """The columns in the form the :class:`ValueMatcher` consumes."""
        return [
            ColumnValues(column_id=column_id, values=list(values))
            for column_id, values in self.columns.items()
        ]

    def tables(self) -> List[Table]:
        """The columns as single-column tables named after the column id."""
        tables = []
        for column_id, values in self.columns.items():
            table_name, column_name = column_id
            tables.append(Table(table_name, [column_name], [(value,) for value in values]))
        return tables

    def gold_pairs(self) -> Set[frozenset]:
        """All unordered within-set value pairs of the ground truth."""
        pairs: Set[frozenset] = set()
        for gold_set in self.gold_sets:
            members = sorted(gold_set, key=lambda key: (str(key[0]), str(key[1])))
            for index, left in enumerate(members):
                for right in members[index + 1 :]:
                    pairs.add(frozenset((left, right)))
        return pairs

    @property
    def total_values(self) -> int:
        """Total number of values across the aligning columns."""
        return sum(len(values) for values in self.columns.values())


class AutoJoinBenchmark:
    """Deterministic generator of Auto-Join-style integration sets.

    Parameters
    ----------
    n_sets:
        Number of integration sets (the paper's benchmark has 31).
    values_per_column:
        Approximate number of values per aligning column (the paper reports
        around 150 on average).
    overlap:
        Fraction of entities of the first column that also appear (as a
        possibly-corrupted surface form) in each other column.
    three_column_fraction:
        Fraction of integration sets that get a third aligning column.
    seed:
        RNG seed; the same seed always produces the same benchmark.
    """

    def __init__(
        self,
        n_sets: int = 31,
        values_per_column: int = 150,
        overlap: float = 0.65,
        distractor_fraction: float = 0.4,
        three_column_fraction: float = 0.35,
        seed: int = 42,
    ) -> None:
        if n_sets <= 0:
            raise ValueError("n_sets must be positive")
        if not 0.0 < overlap <= 1.0:
            raise ValueError("overlap must be in (0, 1]")
        self.n_sets = n_sets
        self.values_per_column = values_per_column
        self.overlap = overlap
        self.distractor_fraction = distractor_fraction
        self.three_column_fraction = three_column_fraction
        self.seed = seed
        self._corruptor = Corruptor(seed=seed)

    # -- public API -----------------------------------------------------------------
    def generate(self) -> List[AutoJoinIntegrationSet]:
        """Generate all integration sets."""
        topics = self._topics_cycle()
        sets: List[AutoJoinIntegrationSet] = []
        for index in range(self.n_sets):
            topic = topics[index % len(topics)]
            profile = self._profile_for(topic, index)
            sets.append(self._generate_set(index, topic, profile))
        return sets

    def generate_small(self, n_sets: int = 3, values_per_column: int = 25) -> List[AutoJoinIntegrationSet]:
        """A tiny variant used by tests and the benchmark smoke tests."""
        small = AutoJoinBenchmark(
            n_sets=n_sets,
            values_per_column=values_per_column,
            overlap=self.overlap,
            three_column_fraction=self.three_column_fraction,
            seed=self.seed,
        )
        return small.generate()

    # -- internals -------------------------------------------------------------------
    def _topics_cycle(self) -> List[str]:
        """The paper's 17 topics, interleaving semantic and surface topics.

        The real Auto-Join benchmark mixes integration sets whose joins need
        world knowledge (abbreviations, codes, synonyms) with sets whose joins
        are surface transformations; the cycle alternates the two kinds so
        every prefix of the benchmark keeps roughly the same mix.
        """
        rng = random.Random(self.seed)
        semantic = list(SEMANTIC_TOPICS)
        surface = list(SURFACE_TOPICS)
        rng.shuffle(semantic)
        rng.shuffle(surface)
        chosen_semantic = semantic[:11]
        chosen_surface = surface[:6]
        interleaved: List[str] = []
        while chosen_semantic or chosen_surface:
            if chosen_semantic:
                interleaved.append(chosen_semantic.pop())
            if chosen_semantic:
                interleaved.append(chosen_semantic.pop())
            if chosen_surface:
                interleaved.append(chosen_surface.pop())
        return interleaved

    #: Profiles compatible with each topic category.
    _SEMANTIC_PROFILES = ("abbreviations", "synonyms", "mixed")
    _SURFACE_PROFILES = ("typos", "casing", "formatting", "mixed")

    def _profile_for(self, topic: str, index: int) -> CorruptionProfile:
        """Pick a corruption profile compatible with the topic's category."""
        by_name = {profile.name: profile for profile in DEFAULT_PROFILES}
        if topic_category(topic) == "semantic":
            names = self._SEMANTIC_PROFILES
        else:
            names = self._SURFACE_PROFILES
        return by_name[names[index % len(names)]]

    def _generate_set(
        self, index: int, topic: str, profile: CorruptionProfile
    ) -> AutoJoinIntegrationSet:
        rng = random.Random(self.seed * 1_000_003 + index)
        vocabulary = topic_vocabulary(topic)
        set_name = f"autojoin_{index:02d}_{topic}"

        n_columns = 3 if rng.random() < self.three_column_fraction else 2
        pool_size = min(len(vocabulary), int(self.values_per_column * 1.4))
        entities = vocabulary.sample(pool_size, seed=self.seed + index)
        rng.shuffle(entities)

        column_ids = [(f"{set_name}_T{column}", "value") for column in range(n_columns)]
        columns: Dict[Hashable, List[str]] = {column_id: [] for column_id in column_ids}
        used_per_column: List[Set[str]] = [set() for _ in column_ids]
        gold: Dict[str, Set[ValueKey]] = {}

        first_column_count = min(self.values_per_column, len(entities))
        first_entities = entities[:first_column_count]
        extra_entities = entities[first_column_count:]

        # Column 0 carries the canonical surface forms (the "query" side).
        for entity in first_entities:
            surface = entity
            if surface in used_per_column[0]:
                continue
            columns[column_ids[0]].append(surface)
            used_per_column[0].add(surface)
            gold.setdefault(entity, set()).add((column_ids[0], surface))

        # Other columns carry corrupted surfaces for the overlapping entities
        # plus some entities of their own.
        for column_index in range(1, n_columns):
            column_id = column_ids[column_index]
            overlapping = [entity for entity in first_entities if rng.random() < self.overlap]
            own = [
                entity
                for entity in extra_entities
                if rng.random() < self.distractor_fraction
            ]
            for entity in overlapping + own:
                surface = self._corrupt_unique(
                    entity, profile, rng, used_per_column[column_index], gold
                )
                if surface is None:
                    continue
                columns[column_id].append(surface)
                used_per_column[column_index].add(surface)
                gold.setdefault(entity, set()).add((column_id, surface))

        gold_sets = [members for members in gold.values() if members]
        gold_sets.sort(key=lambda members: sorted(str(member) for member in members))
        return AutoJoinIntegrationSet(
            name=set_name,
            topic=topic,
            profile=profile.name,
            columns=columns,
            gold_sets=gold_sets,
        )

    def _corrupt_unique(
        self,
        entity: str,
        profile: CorruptionProfile,
        rng: random.Random,
        used: Set[str],
        gold: Dict[str, Set[ValueKey]],
    ) -> Optional[str]:
        """Corrupt ``entity`` to a surface not yet used in the column.

        The surface must also not collide with a *different* entity's canonical
        form, otherwise the ground truth would become ambiguous.
        """
        other_canonicals = {other for other in gold if other != entity}
        for _ in range(6):
            surface, _kind = self._corruptor.corrupt_with_profile(entity, profile, rng)
            if surface in used or surface in other_canonicals:
                continue
            return surface
        # Last resort: keep the canonical surface if it is still free.
        if entity not in used and entity not in other_canonicals:
            return entity
        return None
