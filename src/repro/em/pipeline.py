"""End-to-end entity-matching pipeline over an integrated table.

This is the downstream task of the paper's second experiment: after a set of
tables has been integrated (by Fuzzy FD or by regular FD), entity matching
groups the integrated tuples that describe the same real-world entity, and the
grouping is scored against gold entity clusters defined over the *source*
tuple ids.  Using source tuple ids (the provenance the FD operators maintain)
makes the scores of the two integration methods directly comparable even
though they produce different numbers of integrated tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.em.blocking import TokenBlocker
from repro.em.clustering import cluster_matches
from repro.em.matcher import RecordPair, RecordPairMatcher
from repro.em.metrics import EntityMatchingScores, pairwise_scores
from repro.embeddings.base import ValueEmbedder
from repro.table.table import Table


@dataclass
class EntityMatchingResult:
    """Clusters (over row ids and over source tuple ids) plus optional scores."""

    row_clusters: List[List[int]]
    source_clusters: List[List[str]]
    matches: List[RecordPair] = field(default_factory=list)
    scores: Optional[EntityMatchingScores] = None


class EntityMatchingPipeline:
    """Blocking → pairwise matching → clustering → (optional) evaluation."""

    def __init__(
        self,
        match_threshold: float = 0.65,
        embedder: Optional[ValueEmbedder] = None,
        blocker: Optional[TokenBlocker] = None,
    ) -> None:
        self.matcher = RecordPairMatcher(threshold=match_threshold, embedder=embedder)
        self.blocker = blocker if blocker is not None else TokenBlocker()

    def run(
        self,
        table: Table,
        gold_clusters: Optional[Iterable[Iterable[str]]] = None,
    ) -> EntityMatchingResult:
        """Run entity matching over ``table``.

        ``gold_clusters`` — clusters of *source tuple ids* — trigger pairwise
        evaluation.  The table must carry provenance (Full Disjunction results
        do) for source-level clusters and scores to be produced.
        """
        candidates = self.blocker.candidate_pairs(table)
        matches = self.matcher.match(table, candidates)
        row_clusters = cluster_matches(table.num_rows, matches)
        source_clusters = self._to_source_clusters(table, row_clusters)

        scores = None
        if gold_clusters is not None:
            scores = pairwise_scores(source_clusters, gold_clusters)
        return EntityMatchingResult(
            row_clusters=row_clusters,
            source_clusters=source_clusters,
            matches=matches,
            scores=scores,
        )

    @staticmethod
    def _to_source_clusters(table: Table, row_clusters: Sequence[Sequence[int]]) -> List[List[str]]:
        """Map row-id clusters to clusters of source tuple ids via provenance.

        An integrated tuple already *merges* several source tuples, so its
        provenance set contributes to a single cluster; rows without
        provenance contribute a synthetic id so the structure stays usable.
        """
        provenance = table.provenance
        clusters: List[List[str]] = []
        for cluster in row_clusters:
            sources: Set[str] = set()
            for row_id in cluster:
                if provenance is not None and row_id < len(provenance):
                    sources |= set(provenance[row_id])
                else:
                    sources.add(f"{table.name}:{row_id}")
            clusters.append(sorted(sources))
        return clusters
