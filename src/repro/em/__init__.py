"""Downstream entity matching over integrated tables.

The paper's second experiment ("Downstreaming Task Effectiveness") runs entity
matching over the table produced by Fuzzy FD and by regular FD and compares
precision/recall/F1 against gold entity clusters.  This package provides the
EM pipeline used for that experiment: candidate generation by blocking,
pairwise record similarity, clustering of matched pairs into entities, and
pairwise evaluation metrics.
"""

from repro.em.blocking import TokenBlocker
from repro.em.matcher import RecordPairMatcher, RecordPair
from repro.em.clustering import cluster_matches
from repro.em.metrics import EntityMatchingScores, pairwise_scores
from repro.em.pipeline import EntityMatchingPipeline, EntityMatchingResult

__all__ = [
    "TokenBlocker",
    "RecordPairMatcher",
    "RecordPair",
    "cluster_matches",
    "EntityMatchingScores",
    "pairwise_scores",
    "EntityMatchingPipeline",
    "EntityMatchingResult",
]
