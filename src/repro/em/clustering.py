"""Clustering matched record pairs into entities."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.em.matcher import RecordPair
from repro.utils.unionfind import UnionFind


def cluster_matches(row_count: int, matches: Sequence[RecordPair]) -> List[List[int]]:
    """Connected-component clustering of matched pairs.

    Every row id in ``range(row_count)`` appears in exactly one cluster;
    unmatched rows form singletons.  Connected components are the standard
    (and transitive-closure-consistent) way to turn pairwise match decisions
    into entities.
    """
    uf = UnionFind(range(row_count))
    for pair in matches:
        uf.union(pair.left, pair.right)
    clusters = [sorted(group) for group in uf.groups()]
    clusters.sort(key=lambda group: group[0])
    return clusters


def clusters_to_labels(clusters: Iterable[Iterable[int]]) -> Dict[int, int]:
    """``row id -> cluster id`` mapping (cluster ids are dense, start at 0)."""
    labels: Dict[int, int] = {}
    for cluster_id, cluster in enumerate(clusters):
        for row_id in cluster:
            labels[row_id] = cluster_id
    return labels
