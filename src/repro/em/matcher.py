"""Pairwise record matching for the downstream entity-matching task."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.embeddings.base import ValueEmbedder
from repro.table.nulls import is_null
from repro.table.table import Row, Table
from repro.utils.text import jaccard_similarity, normalized_edit_similarity, tokenize


@dataclass(frozen=True)
class RecordPair:
    """One scored candidate pair of rows of the integrated table."""

    left: int
    right: int
    score: float


class RecordPairMatcher:
    """Scores row pairs by a distinctiveness-weighted attribute similarity.

    For each column where both rows are non-null, the value similarity is the
    maximum of token-Jaccard and normalised edit similarity (optionally the
    embedding cosine when an embedder is supplied).  Column contributions are
    weighted by the column's *distinctiveness* in the table (fraction of
    distinct non-null values): identifying attributes such as names weigh far
    more than categorical attributes such as a role or a country, which is the
    standard unsupervised heuristic for record matching without labelled
    training pairs.  A coverage factor penalises pairs comparable on only a
    small fraction of the schema.
    """

    def __init__(
        self,
        threshold: float = 0.65,
        embedder: Optional[ValueEmbedder] = None,
        min_shared_columns: int = 1,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.embedder = embedder
        self.min_shared_columns = min_shared_columns

    # -- scoring ------------------------------------------------------------------
    def value_similarity(self, left: object, right: object) -> float:
        """Similarity of two attribute values in [0, 1]."""
        if left == right:
            return 1.0
        lexical = max(
            jaccard_similarity(tokenize(left), tokenize(right)),
            normalized_edit_similarity(left, right),
        )
        if self.embedder is not None:
            semantic = max(0.0, self.embedder.cosine_similarity(left, right))
            return max(lexical, semantic)
        return lexical

    def column_weights(self, table: Table) -> Dict[str, float]:
        """Distinctiveness weight per column (floored so no column is ignored)."""
        weights: Dict[str, float] = {}
        for column in table.columns:
            values = table.column_values(column, dropna=True)
            if not values:
                weights[column] = 0.1
                continue
            distinct = len(set(values))
            weights[column] = max(0.1, distinct / len(values))
        return weights

    def record_similarity(
        self,
        table: Table,
        left_id: int,
        right_id: int,
        weights: Optional[Dict[str, float]] = None,
    ) -> float:
        """Similarity of two rows of ``table`` in [0, 1]."""
        weights = weights if weights is not None else self.column_weights(table)
        left_row = table.row(left_id)
        right_row = table.row(right_id)
        weighted_sum = 0.0
        weight_total = 0.0
        comparable = 0
        for column in table.columns:
            left_value = left_row[column]
            right_value = right_row[column]
            if is_null(left_value) or is_null(right_value):
                continue
            comparable += 1
            weight = weights.get(column, 0.1)
            weighted_sum += weight * self.value_similarity(left_value, right_value)
            weight_total += weight
        if comparable < self.min_shared_columns or weight_total == 0.0:
            return 0.0
        coverage = comparable / max(1, len(table.columns))
        base = weighted_sum / weight_total
        # Blend the per-attribute agreement with coverage so that pairs
        # compared on very few attributes are penalised.
        return base * (0.8 + 0.2 * coverage)

    # -- matching -------------------------------------------------------------------
    def match(self, table: Table, candidate_pairs: Sequence[Tuple[int, int]]) -> List[RecordPair]:
        """Score candidate pairs and keep those at or above the threshold."""
        weights = self.column_weights(table)
        matches: List[RecordPair] = []
        for left_id, right_id in candidate_pairs:
            score = self.record_similarity(table, left_id, right_id, weights=weights)
            if score >= self.threshold:
                matches.append(RecordPair(left=left_id, right=right_id, score=score))
        matches.sort(key=lambda pair: (-pair.score, pair.left, pair.right))
        return matches
