"""Blocking: cheap candidate generation for entity matching.

Comparing every pair of rows of an integrated table is quadratic; blocking
restricts the comparisons to rows that share at least one (sufficiently rare)
token in their textual attributes — the standard token-blocking scheme from
the entity-resolution literature.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.table.nulls import is_null
from repro.table.table import Table
from repro.utils.text import tokenize


class TokenBlocker:
    """Token blocking over selected (or all) textual columns.

    Parameters
    ----------
    columns:
        Columns whose tokens define blocks; ``None`` uses every column.
    max_block_size:
        Blocks larger than this are discarded (ubiquitous tokens such as
        "the" would otherwise reintroduce the quadratic blow-up).
    """

    def __init__(self, columns: Sequence[str] | None = None, max_block_size: int = 50) -> None:
        self.columns = list(columns) if columns is not None else None
        self.max_block_size = max_block_size

    def blocks(self, table: Table) -> Dict[str, List[int]]:
        """``token -> row ids`` for every token within the size limit."""
        columns = self.columns if self.columns is not None else list(table.columns)
        blocks: Dict[str, List[int]] = {}
        for row_id in range(table.num_rows):
            row = table.row(row_id)
            for column in columns:
                if column not in table.schema:
                    continue
                value = row[column]
                if is_null(value):
                    continue
                for token in tokenize(value):
                    blocks.setdefault(token, []).append(row_id)
        return {
            token: row_ids
            for token, row_ids in blocks.items()
            if len(row_ids) <= self.max_block_size
        }

    def candidate_pairs(self, table: Table) -> List[Tuple[int, int]]:
        """Distinct row-id pairs sharing at least one blocking token."""
        pairs: Set[Tuple[int, int]] = set()
        for row_ids in self.blocks(table).values():
            for index, left in enumerate(row_ids):
                for right in row_ids[index + 1 :]:
                    if left != right:
                        pairs.add((min(left, right), max(left, right)))
        return sorted(pairs)
