"""Pairwise evaluation metrics for entity matching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class EntityMatchingScores:
    """Pairwise precision, recall and F1 of an entity-matching result."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def as_dict(self) -> Dict[str, float]:
        """Scores as a plain dictionary (handy for report tables)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": float(self.true_positives),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
        }


def _pairs_of(clusters: Iterable[Iterable[object]]) -> Set[FrozenSet[object]]:
    pairs: Set[FrozenSet[object]] = set()
    for cluster in clusters:
        members = sorted(cluster, key=str)
        for index, left in enumerate(members):
            for right in members[index + 1 :]:
                if left != right:
                    pairs.add(frozenset((left, right)))
    return pairs


def pairwise_scores(
    predicted_clusters: Iterable[Iterable[object]],
    gold_clusters: Iterable[Iterable[object]],
) -> EntityMatchingScores:
    """Pairwise P/R/F1 between predicted and gold clusterings.

    Items are arbitrary hashable identifiers (row ids, source tuple ids, ...);
    a pair counts as positive when both items share a cluster.  Precision with
    no predicted pairs and recall with no gold pairs are defined as 1.0, the
    convention under which a perfect empty prediction is not penalised.
    """
    predicted_pairs = _pairs_of(predicted_clusters)
    gold_pairs = _pairs_of(gold_clusters)

    true_positives = len(predicted_pairs & gold_pairs)
    false_positives = len(predicted_pairs - gold_pairs)
    false_negatives = len(gold_pairs - predicted_pairs)

    precision = true_positives / len(predicted_pairs) if predicted_pairs else 1.0
    recall = true_positives / len(gold_pairs) if gold_pairs else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return EntityMatchingScores(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )
