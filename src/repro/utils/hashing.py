"""Deterministic hashing helpers.

Python's built-in ``hash`` for strings is randomised per process, which would
make the simulated embedding models non-reproducible across runs.  Everything
here is derived from BLAKE2b digests and is therefore stable across processes,
platforms and Python versions.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List

import numpy as np


def stable_hash(text: str, seed: int = 0) -> int:
    """Return a stable 64-bit unsigned hash of ``text``.

    ``seed`` lets callers derive independent hash families from the same
    input, which the embedding simulators use to fill different coordinate
    blocks.
    """
    digest = hashlib.blake2b(
        text.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little", signed=False)
    ).digest()
    return struct.unpack("<Q", digest)[0]


def stable_hash_floats(text: str, count: int, seed: int = 0) -> List[float]:
    """Return ``count`` floats in [-1, 1) derived deterministically from ``text``."""
    values: List[float] = []
    block = 0
    while len(values) < count:
        digest = hashlib.blake2b(
            f"{text}\x00{block}".encode("utf-8"),
            digest_size=32,
            key=seed.to_bytes(8, "little", signed=False),
        ).digest()
        for offset in range(0, len(digest), 8):
            if len(values) >= count:
                break
            chunk = struct.unpack("<Q", digest[offset : offset + 8])[0]
            values.append(chunk / 2**63 - 1.0)
        block += 1
    return values


from functools import lru_cache


@lru_cache(maxsize=262_144)
def _stable_vector_cached(text: str, dimension: int, seed: int) -> np.ndarray:
    generator = np.random.default_rng(stable_hash(text, seed=seed))
    vector = generator.standard_normal(dimension)
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        vector = np.zeros(dimension, dtype=np.float64)
        vector[0] = 1.0
        return vector
    return vector / norm


def stable_vector(text: str, dimension: int, seed: int = 0) -> np.ndarray:
    """Return a deterministic pseudo-random unit vector for ``text``.

    Distinct texts produce (with overwhelming probability) nearly orthogonal
    vectors in high dimension, which is exactly the behaviour the simulated
    embedders rely on for unrelated values.  The vector is derived from a
    BLAKE2b hash of the text that seeds numpy's PCG64 generator (stable across
    platforms and Python versions), and results are memoised because the same
    n-gram/token directions are requested millions of times by the embedders.
    The returned array is shared — callers must not mutate it.
    """
    return _stable_vector_cached(text, dimension, seed)


def stable_rng(text: str, seed: int = 0) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically from ``text``."""
    return np.random.default_rng(stable_hash(text, seed=seed))
