"""Shared parallel execution layer for partitioned workloads.

Three layers of the pipeline are embarrassingly parallel over independent
partitions: the component-wise blocked matcher solves one assignment per
connected component, the partitioned Full Disjunction closes one tuple
component at a time, and the :class:`~repro.core.engine.IntegrationEngine`
can serve independent integration requests concurrently.  This module is the
one abstraction they all share:

* :class:`ExecutorConfig` — the validated knob set (``backend``,
  ``max_workers``, ``batch_size``, ``min_parallel_items``), carried end to end
  from :class:`~repro.core.config.FuzzyFDConfig` / the CLI down to the worker
  pools.
* :func:`run_partitioned` — ``[fn(item) for item in items]`` executed over the
  configured backend.  Items are grouped into contiguous, weight-balanced
  *batches* before dispatch so thousands of tiny partitions (the singleton-
  dominated candidate graphs of data-lake columns) amortise the per-task
  executor overhead, and results are always returned in input order — callers
  get a byte-identical merge regardless of backend or worker count.

Large read-only constants (an embedding matrix every item slices, say) must
**not** be captured inside ``fn``: the process backend pickles ``fn`` once
per dispatched batch, so captured megabytes would cross the pipe once per
batch.  Pass them via ``shared=`` instead — ``run_partitioned`` then calls
``fn(item, **shared)``, binding the arrays directly on the serial and thread
paths and handing the process pool memmap *handles* (publish once to disk,
attach once per worker, see :mod:`repro.storage.shared`) so only the small
batch items and a few-hundred-byte handle ever cross the pipe.

Backends
--------
``"serial"``
    A plain loop — the baseline and the fallback for tiny workloads.
``"thread"``
    ``concurrent.futures.ThreadPoolExecutor``.  Pays off when the per-item
    work releases the GIL (numpy scoring, scipy assignments) or blocks on IO;
    zero serialisation cost, shared memory.
``"process"``
    ``concurrent.futures.ProcessPoolExecutor``.  True CPU parallelism for
    pure-Python work at the price of pickling ``fn`` and every batch; ``fn``
    must be a module-level callable (or a ``functools.partial`` of one).

Determinism guarantees
----------------------
``run_partitioned(items, fn, config)`` returns exactly
``[fn(item) for item in items]`` for *every* backend and worker count —
serial == thread == process, element for element.  Three design decisions
make that hold:

* **Contiguous batches.**  :func:`partition_batches` only ever groups
  *adjacent* items, so flattening the batches restores the exact input
  order; no hashing, no work stealing, no arrival-order dependence.
* **Positional merge.**  The parallel paths collect ``pool.map`` results in
  batch-submission order and flatten them positionally; nothing is merged
  by completion time.
* **No shared mutable state.**  ``fn`` receives one item and returns one
  result; the executor never passes accumulators between workers.

Consequently a caller may treat the executor configuration as a pure
performance knob: changing ``backend``, ``max_workers`` or ``batch_size``
can never change a result, only its latency.  ``weight`` steers batch
balancing only — it affects *which* batch an item lands in, never the order
results come back in.  ``tests/utils/test_executor.py`` and
``tests/matching/test_parallel_matching.py`` assert these guarantees
(byte-identical matches across serial/thread/process at 1/2/4 workers).
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Executor backends accepted by :class:`ExecutorConfig`.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutorConfig:
    """How a partitioned workload is executed.

    Attributes
    ----------
    backend:
        One of :data:`EXECUTOR_BACKENDS`.  ``"serial"`` ignores every other
        knob.
    max_workers:
        Upper bound on concurrent workers; ``1`` degrades any backend to the
        serial loop (no pool is ever created).
    batch_size:
        Maximum number of items per dispatched batch.  Batching is what makes
        thousands of sub-millisecond partitions worth parallelising at all.
    min_parallel_items:
        Workloads with fewer items than this run serially — a pool spin-up
        costs more than it saves on a handful of items.
    """

    backend: str = "serial"
    max_workers: int = 1
    batch_size: int = 64
    min_parallel_items: int = 4

    def __post_init__(self) -> None:
        if self.backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"backend must be one of {list(EXECUTOR_BACKENDS)}, got {self.backend!r}"
            )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.min_parallel_items < 0:
            raise ValueError(
                f"min_parallel_items must be >= 0, got {self.min_parallel_items}"
            )

    @property
    def is_parallel(self) -> bool:
        """Whether this configuration can ever dispatch to a pool."""
        return self.backend != "serial" and self.max_workers > 1

    def should_parallelise(self, item_count: int) -> bool:
        """Whether a workload of ``item_count`` items goes to a pool."""
        return self.is_parallel and item_count >= self.min_parallel_items


#: The serial default, shared so callers don't allocate one per call site.
SERIAL_EXECUTOR = ExecutorConfig()


def partition_batches(
    items: Sequence[ItemT],
    config: ExecutorConfig,
    weight: Optional[Callable[[ItemT], float]] = None,
) -> List[List[ItemT]]:
    """Group ``items`` into contiguous batches balanced by total ``weight``.

    Contiguity is what keeps the merge deterministic: flattening the batches
    restores the exact input order.  Each batch holds at most
    ``config.batch_size`` items and roughly ``total_weight / (4 × workers)``
    weight (four batches per worker smooths out skewed partitions — one giant
    connected component doesn't serialise the whole pool behind it).
    """
    if not items:
        return []
    weights = [1.0 if weight is None else max(0.0, float(weight(item))) for item in items]
    total = sum(weights)
    slots = max(1, 4 * config.max_workers)
    target = total / slots if total > 0 else 0.0

    batches: List[List[ItemT]] = []
    current: List[ItemT] = []
    current_weight = 0.0
    for item, item_weight in zip(items, weights):
        if current and (
            len(current) >= config.batch_size
            or (target > 0.0 and current_weight + item_weight > target)
        ):
            batches.append(current)
            current = []
            current_weight = 0.0
        current.append(item)
        current_weight += item_weight
    if current:
        batches.append(current)
    return batches


def contiguous_ranges(
    count: int, config: ExecutorConfig, *, min_chunk: int = 256
) -> List[tuple]:
    """Split ``range(count)`` into contiguous ``(start, stop)`` spans.

    The span-per-item shape :func:`run_partitioned` wants for *indexable*
    workloads: when every item is "positions ``start:stop`` of one shared
    array", dispatching spans instead of elements keeps the pickled batch a
    few tuples regardless of workload size, and each worker slices its rows
    out of the ``shared=`` array locally.  Spans follow the same ~four-slots-
    per-worker sizing as :func:`partition_batches` so one slow span cannot
    serialise the pool, but never drop below ``min_chunk`` positions — a span
    must outweigh its dispatch overhead.  Flattening the spans in order
    restores ``range(count)`` exactly, preserving the positional-merge
    guarantee.
    """
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    if count <= 0:
        return []
    slots = max(1, 4 * config.max_workers)
    size = max(min_chunk, -(-count // slots))
    return [(start, min(count, start + size)) for start in range(0, count, size)]


def _apply_batch(fn: Callable[[ItemT], ResultT], batch: Sequence[ItemT]) -> List[ResultT]:
    """Apply ``fn`` to one batch (module-level so process pools can pickle it)."""
    return [fn(item) for item in batch]


#: Long-lived process pools keyed by worker count.  Worker processes pay a
#: full interpreter + numpy import at startup, so spinning a pool per call
#: (one per column pair, say) would cost more than it saves; pools live until
#: interpreter exit instead.  Thread pools are cheap and stay per-call.
_PROCESS_POOLS: Dict[int, object] = {}
_PROCESS_POOL_LOCK = threading.Lock()


def _process_pool(workers: int):
    """A shared ``ProcessPoolExecutor`` with ``workers`` workers.

    Uses the ``forkserver`` start method (falling back to ``spawn``) rather
    than ``fork``: callers like ``IntegrationEngine.integrate_many`` invoke
    this from worker *threads*, and forking a multi-threaded parent can
    deadlock children on locks held by unrelated threads.  Both safe methods
    require ``fn`` to be importable in a fresh interpreter — which
    :func:`run_partitioned` demands anyway.
    """
    from concurrent.futures import ProcessPoolExecutor
    import multiprocessing

    with _PROCESS_POOL_LOCK:
        pool = _PROCESS_POOLS.get(workers)
        if pool is None:
            try:
                context = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - platform without forkserver
                context = multiprocessing.get_context("spawn")
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            _PROCESS_POOLS[workers] = pool
        return pool


@atexit.register
def _shutdown_process_pools() -> None:  # pragma: no cover - interpreter exit
    with _PROCESS_POOL_LOCK:
        for pool in _PROCESS_POOLS.values():
            pool.shutdown(wait=False, cancel_futures=True)
        _PROCESS_POOLS.clear()


def _discard_process_pool(workers: int, pool: object) -> None:
    """Drop a broken shared pool so the next request builds a fresh one.

    Identity-checked under the lock: a concurrent caller may already have
    replaced the entry, and discarding *its* healthy pool would cascade the
    failure.
    """
    with _PROCESS_POOL_LOCK:
        if _PROCESS_POOLS.get(workers) is pool:
            del _PROCESS_POOLS[workers]
    pool.shutdown(wait=False, cancel_futures=True)


#: Worker-death recovery counters (cumulative, process-wide).
_RECOVERY_LOCK = threading.Lock()
_RECOVERY_COUNTERS: Dict[str, int] = {
    "pool_rebuilds": 0,
    "serial_fallbacks": 0,
    "batches_retried": 0,
}


def executor_statistics() -> Dict[str, int]:
    """Cumulative worker-death recovery counters of the process backend.

    ``pool_rebuilds`` counts broken pools replaced, ``batches_retried`` the
    batches re-dispatched after a break, ``serial_fallbacks`` the times a
    rebuilt pool broke again and the remaining batches ran in-process.
    """
    with _RECOVERY_LOCK:
        return dict(_RECOVERY_COUNTERS)


def _run_process_batches(
    task: Callable[[ItemT], ResultT],
    batches: Sequence[Sequence[ItemT]],
    config: ExecutorConfig,
) -> List[List[ResultT]]:
    """Run the batches on the shared process pool, surviving worker death.

    A worker that dies mid-batch (``os._exit``, OOM-kill, segfault) breaks
    the whole ``ProcessPoolExecutor``: every unfinished future raises
    ``BrokenProcessPool``.  The completed batches' results are kept; the
    broken pool is discarded, a fresh one is built, and only the failed
    batches are re-dispatched — positionally, so the merged result is still
    ``[fn(item) for item in items]`` exactly.  If the rebuilt pool breaks
    too, the remaining batches run serially in this process (progress over
    parallelism).  Exceptions *raised by the task itself* propagate
    unchanged — recovery only engages on pool breakage.
    """
    from concurrent.futures.process import BrokenProcessPool

    results: List[Optional[List[ResultT]]] = [None] * len(batches)
    pending = list(range(len(batches)))
    for attempt in range(2):
        pool = _process_pool(config.max_workers)
        futures = {}
        failed: List[int] = []
        for index in pending:
            try:
                futures[index] = pool.submit(_apply_batch, task, batches[index])
            except (BrokenProcessPool, RuntimeError):
                # The pool broke (or was shut down) between submissions.
                failed.append(index)
        for index, future in futures.items():
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                failed.append(index)
        if not failed:
            return results  # type: ignore[return-value]
        failed.sort()
        _discard_process_pool(config.max_workers, pool)
        with _RECOVERY_LOCK:
            _RECOVERY_COUNTERS["batches_retried"] += len(failed)
            if attempt == 0:
                _RECOVERY_COUNTERS["pool_rebuilds"] += 1
        pending = failed
    # Two broken pools in a row: stop gambling on worker processes and finish
    # the remaining batches in this one.
    with _RECOVERY_LOCK:
        _RECOVERY_COUNTERS["serial_fallbacks"] += 1
    for index in pending:
        results[index] = _apply_batch(task, batches[index])
    return results  # type: ignore[return-value]


def run_partitioned(
    items: Sequence[ItemT],
    fn: Callable[..., ResultT],
    config: ExecutorConfig = SERIAL_EXECUTOR,
    *,
    weight: Optional[Callable[[ItemT], float]] = None,
    shared: Optional[Mapping[str, "object"]] = None,
) -> List[ResultT]:
    """Return ``[fn(item) for item in items]``, possibly executed in parallel.

    Results are always in input order, whatever the backend — the parallel
    paths dispatch contiguous batches and reassemble them positionally, so a
    caller that merges results sequentially gets output identical to the
    serial loop.  A worker exception propagates to the caller unchanged.

    For the ``"process"`` backend ``fn`` (and every item and result) must be
    picklable; pass a module-level function or a ``functools.partial`` over
    one.  ``weight`` estimates the relative cost of one item (e.g. cost-matrix
    cells) and steers the batch balancing; it never affects the results.

    ``shared`` maps keyword names to large read-only ``numpy`` arrays that
    every item needs; ``fn`` is then called as ``fn(item, **shared)``.  On
    the serial and thread paths the arrays are bound directly (zero copies).
    On the process path they are published once to memmap files and workers
    attach on first use (:mod:`repro.storage.shared`), so batches carry only
    items and handles — never the arrays.  Binding through ``shared`` never
    changes results, only what crosses the process pipe.
    """
    items = list(items)
    if not items:
        return []
    if not config.should_parallelise(len(items)):
        return _run_serial(items, fn, shared)

    batches = partition_batches(items, config, weight)
    if len(batches) <= 1:
        return _run_serial(items, fn, shared)
    workers = min(config.max_workers, len(batches))

    if config.backend == "thread":
        from concurrent.futures import ThreadPoolExecutor

        task = fn if shared is None else _bind_shared_in_memory(fn, shared)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            batch_results = list(pool.map(_apply_batch, [task] * len(batches), batches))
    else:  # "process" — shared long-lived pool (submitting is thread-safe)
        if shared is None:
            batch_results = _run_process_batches(fn, batches, config)
        else:
            from repro.storage.shared import SharedArrayBinding, SharedArrays

            with SharedArrays(shared) as region:
                task = SharedArrayBinding(fn, shared, region.handles)
                batch_results = _run_process_batches(task, batches, config)

    flattened: List[ResultT] = []
    for batch_result in batch_results:
        flattened.extend(batch_result)
    return flattened


def _run_serial(
    items: Sequence[ItemT],
    fn: Callable[..., ResultT],
    shared: Optional[Mapping[str, "object"]],
) -> List[ResultT]:
    """The plain loop, with ``shared`` bound as keyword arguments if given."""
    if shared is None:
        return [fn(item) for item in items]
    return [fn(item, **shared) for item in items]


def _bind_shared_in_memory(
    fn: Callable[..., ResultT], shared: Mapping[str, "object"]
) -> Callable[[ItemT], ResultT]:
    """Bind ``shared`` directly for in-process execution (no serialisation)."""

    def bound(item: ItemT) -> ResultT:
        return fn(item, **shared)

    return bound
