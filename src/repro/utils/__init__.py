"""Shared low-level utilities used across the repro package.

The utilities here are intentionally dependency-light: text normalisation and
string-distance helpers, a union-find (disjoint-set) structure used by value
and entity clustering, deterministic hashing used by the simulated embedding
models, small timing helpers used by the benchmark harnesses, and the shared
parallel execution layer (:class:`~repro.utils.executor.ExecutorConfig` +
:func:`~repro.utils.executor.run_partitioned`) behind every worker pool in
the pipeline.
"""

from repro.utils.executor import (
    EXECUTOR_BACKENDS,
    ExecutorConfig,
    partition_batches,
    run_partitioned,
)
from repro.utils.hashing import stable_hash, stable_hash_floats
from repro.utils.text import (
    character_ngrams,
    damerau_levenshtein,
    jaccard_similarity,
    levenshtein,
    normalize_value,
    tokenize,
)
from repro.utils.timer import Timer, timed
from repro.utils.unionfind import UnionFind

__all__ = [
    "EXECUTOR_BACKENDS",
    "ExecutorConfig",
    "partition_batches",
    "run_partitioned",
    "UnionFind",
    "Timer",
    "timed",
    "stable_hash",
    "stable_hash_floats",
    "normalize_value",
    "tokenize",
    "character_ngrams",
    "levenshtein",
    "damerau_levenshtein",
    "jaccard_similarity",
]
