"""Tiny timing helpers used by the runtime benchmarks (Figure 3)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulates named wall-clock measurements.

    >>> timer = Timer()
    >>> with timer.measure("fd"):
    ...     _ = sum(range(1000))
    >>> timer.total("fd") >= 0.0
    True
    """

    measurements: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.measurements.setdefault(name, []).append(elapsed)

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never measured)."""
        return sum(self.measurements.get(name, []))

    def mean(self, name: str) -> float:
        """Mean seconds per measurement under ``name`` (0.0 if never measured)."""
        samples = self.measurements.get(name, [])
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def as_dict(self) -> Dict[str, float]:
        """Return the total per measurement name."""
        return {name: self.total(name) for name in self.measurements}


def timed(func: Callable[..., T], *args: object, **kwargs: object) -> Tuple[T, float]:
    """Run ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
