"""Text normalisation and string-distance helpers.

These are the string-level building blocks used by the embedding simulators
(character n-grams), the lexical distance functions in ``matching.distance``,
and the corruption generators in ``datasets.corruptions``.
"""

from __future__ import annotations

import re
import unicodedata
from typing import List, Sequence, Set

_WHITESPACE_RE = re.compile(r"\s+")
_TOKEN_RE = re.compile(r"[a-z0-9]+")


def normalize_value(value: object) -> str:
    """Normalise a cell value for comparison.

    Lower-cases, strips accents, collapses internal whitespace and trims the
    ends.  ``None`` maps to the empty string so callers can treat nulls
    uniformly.

    >>> normalize_value("  Berlín ")
    'berlin'
    """
    if value is None:
        return ""
    text = str(value)
    # Accent stripping only matters for non-ASCII text; ``str.isascii`` is a
    # C-speed scan, and data-lake values are overwhelmingly ASCII — skipping
    # the NFKD decomposition + combining-mark filter here roughly halves the
    # cost of the blocking hot path.
    if not text.isascii():
        text = unicodedata.normalize("NFKD", text)
        text = "".join(ch for ch in text if not unicodedata.combining(ch))
    text = text.lower()
    text = _WHITESPACE_RE.sub(" ", text)
    return text.strip()


def tokenize(value: object, *, normalized: bool = False) -> List[str]:
    """Split a value into lower-case alphanumeric tokens.

    Pass ``normalized=True`` when ``value`` already went through
    :func:`normalize_value` — hot loops (the blocker computes keys for every
    value of every column pair) normalise once and reuse the result.

    >>> tokenize("New Delhi (IN)")
    ['new', 'delhi', 'in']
    """
    text = value if normalized and isinstance(value, str) else normalize_value(value)
    return _TOKEN_RE.findall(text)


def character_ngrams(value: object, n: int = 3, pad: bool = True, *, normalized: bool = False) -> List[str]:
    """Return the character ``n``-grams of a normalised value.

    With ``pad=True`` the string is wrapped in boundary markers the way
    fastText does, so prefixes and suffixes produce distinctive grams.
    ``normalized=True`` skips the re-normalisation (see :func:`tokenize`).

    >>> character_ngrams("ab", n=3)
    ['<ab', 'ab>']
    """
    text = value if normalized and isinstance(value, str) else normalize_value(value)
    if not text:
        return []
    if pad:
        text = f"<{text}>"
    if len(text) <= n:
        return [text]
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def levenshtein(left: object, right: object) -> int:
    """Classic Levenshtein edit distance between two (normalised) values."""
    a = normalize_value(left)
    b = normalize_value(right)
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def damerau_levenshtein(left: object, right: object) -> int:
    """Damerau-Levenshtein distance (edits plus adjacent transpositions)."""
    a = normalize_value(left)
    b = normalize_value(right)
    if a == b:
        return 0
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dist[i][j] = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if i > 1 and j > 1 and a[i - 1] == b[j - 2] and a[i - 2] == b[j - 1]:
                dist[i][j] = min(dist[i][j], dist[i - 2][j - 2] + 1)
    return dist[-1][-1]


def normalized_edit_similarity(left: object, right: object) -> float:
    """Edit-distance similarity scaled to [0, 1] (1 means identical)."""
    a = normalize_value(left)
    b = normalize_value(right)
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaccard_similarity(left: Sequence[str] | Set[str], right: Sequence[str] | Set[str]) -> float:
    """Jaccard similarity of two token collections (1 when both are empty)."""
    set_left = set(left)
    set_right = set(right)
    if not set_left and not set_right:
        return 1.0
    union = set_left | set_right
    if not union:
        return 1.0
    return len(set_left & set_right) / len(union)


def is_abbreviation_of(short: object, long: object) -> bool:
    """Heuristic test whether ``short`` plausibly abbreviates ``long``.

    Covers initialisms ("US" / "United States"), prefix truncation
    ("Corp" / "Corporation"), and subsequence abbreviations ("Blvd" /
    "Boulevard").  Used as a feature by lexical matchers and by the synthetic
    benchmark's ground-truth audit.
    """
    s = normalize_value(short)
    l = normalize_value(long)
    if not s or not l or len(s) >= len(l):
        return False
    tokens = tokenize(l)
    if len(tokens) > 1:
        initials = "".join(token[0] for token in tokens)
        if s.replace(".", "").replace(" ", "") == initials:
            return True
    compact_short = s.replace(".", "").replace(" ", "")
    compact_long = l.replace(" ", "")
    if compact_long.startswith(compact_short):
        return True
    return _is_subsequence(compact_short, compact_long)


def _is_subsequence(needle: str, haystack: str) -> bool:
    """Return whether ``needle`` appears in ``haystack`` as a subsequence."""
    position = 0
    for ch in needle:
        position = haystack.find(ch, position)
        if position < 0:
            return False
        position += 1
    return True
