"""Union-find (disjoint set) over arbitrary hashable items.

Used to accumulate transitive value-match sets (``core.value_matching``),
entity clusters (``em.clustering``) and column-alignment groups
(``schema_matching.holistic``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Dict, List


class UnionFind:
    """Disjoint-set forest with union by size and path compression.

    Items are arbitrary hashable objects and are added lazily: ``find`` and
    ``union`` both insert unseen items as fresh singletons.

    Example
    -------
    >>> uf = UnionFind()
    >>> uf.union("Berlin", "Berlinn")
    True
    >>> uf.connected("Berlin", "Berlinn")
    True
    >>> uf.connected("Berlin", "Toronto")
    False
    """

    def __init__(self, items: Iterable[Hashable] | None = None) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        if items is not None:
            for item in items:
                self.add(item)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    def add(self, item: Hashable) -> None:
        """Insert ``item`` as a singleton set if it is not present yet."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the walk directly at the root.
        while self._parent[item] != root:
            item, self._parent[item] = self._parent[item], root
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the sets containing ``left`` and ``right``.

        Returns ``True`` if a merge happened, ``False`` if the two items were
        already in the same set.
        """
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return False
        if self._size[left_root] < self._size[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        self._size[left_root] += self._size[right_root]
        return True

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """Return whether the two items currently share a set."""
        return self.find(left) == self.find(right)

    def set_size(self, item: Hashable) -> int:
        """Return the number of items in ``item``'s set."""
        return self._size[self.find(item)]

    def groups(self) -> List[List[Hashable]]:
        """Return every disjoint set as a list of its members.

        Groups are returned in a deterministic order (by insertion order of
        their roots) so callers can rely on reproducible output.
        """
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())

    def to_cluster_labels(self) -> Dict[Hashable, int]:
        """Return a dense ``item -> cluster id`` labelling (ids start at 0)."""
        labels: Dict[Hashable, int] = {}
        root_ids: Dict[Hashable, int] = {}
        for item in self._parent:
            root = self.find(item)
            if root not in root_ids:
                root_ids[root] = len(root_ids)
            labels[item] = root_ids[root]
        return labels
