"""Stdlib-only HTTP adapter over :class:`IntegrationService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no new dependencies — exposing the three endpoints a deployment
needs:

``POST /integrate``
    Body: ``{"tables": [{"name", "columns", "rows"}, ...],
    "deadline_ms": <optional>, "overrides": {<optional REQUEST_OVERRIDES>}}``.
    Replies with the integrated table, the request trace and a ``status``;
    the HTTP code mirrors the service outcome (200 ok, 503 overloaded,
    504 deadline exceeded, 503 + ``Retry-After`` when the embedder breaker
    is open under ``degraded_mode="fail"``, 400 bad request / pipeline
    error).
``GET /stats``
    The :meth:`IntegrationService.stats` snapshot as JSON (including the
    embedder breaker state).
``GET /healthz``
    Three-state health driven by the embedder circuit breaker:
    ``"healthy"`` (breaker closed, 200), ``"degraded"`` (breaker open but
    ``degraded_mode="surface"`` keeps answers flowing, 200), or
    ``"unhealthy"`` (breaker open with no degraded path, 503).

Null cells (plain or labelled) serialise as JSON ``null`` on the way out and
JSON ``null`` deserialises to :data:`~repro.table.nulls.NULL` on the way in,
so a round-trip preserves the missing-value semantics of Figure 1.

Connections are ``Connection: close`` — one request per connection keeps the
parser honest and is plenty for the smoke-test and benchmark traffic this
adapter serves; a production fleet would sit it behind a real ingress.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.service.service import IntegrationService
from repro.service.types import (
    DeadlineExceeded,
    EmbedderUnavailableResponse,
    IntegrationResponse,
    ServiceOverloaded,
    ServiceResponse,
)
from repro.table.nulls import NULL, is_null
from repro.table.table import Table

#: Service outcome ``status`` -> HTTP status line.
STATUS_CODES = {
    "ok": (200, "OK"),
    "overloaded": (503, "Service Unavailable"),
    "deadline_exceeded": (504, "Gateway Timeout"),
    "unavailable": (503, "Service Unavailable"),
    "error": (400, "Bad Request"),
}

MAX_BODY_BYTES = 64 * 1024 * 1024


class BadRequest(ValueError):
    """The request body did not describe a valid integration request."""


def table_to_json(table: Table) -> Dict[str, Any]:
    """Serialise a table; null cells (plain or labelled) become ``null``."""
    return {
        "name": table.name,
        "columns": list(table.columns),
        "rows": [
            [None if is_null(cell) else cell for cell in row] for row in table.rows
        ],
    }


def tables_from_json(payload: Any) -> List[Table]:
    """Parse the ``tables`` field of an ``/integrate`` body."""
    if not isinstance(payload, list) or not payload:
        raise BadRequest("'tables' must be a non-empty list of table objects")
    tables = []
    for index, entry in enumerate(payload):
        if not isinstance(entry, dict) or "columns" not in entry:
            raise BadRequest(f"tables[{index}] must be an object with 'columns'")
        columns = entry["columns"]
        if not isinstance(columns, list) or not columns:
            raise BadRequest(f"tables[{index}].columns must be a non-empty list")
        rows = entry.get("rows", [])
        if not isinstance(rows, list):
            raise BadRequest(f"tables[{index}].rows must be a list of rows")
        name = entry.get("name", f"table_{index}")
        converted = [
            [NULL if cell is None else cell for cell in row] for row in rows
        ]
        try:
            tables.append(Table(str(name), [str(c) for c in columns], converted))
        except ValueError as exc:
            raise BadRequest(f"tables[{index}]: {exc}") from exc
    return tables


def response_to_json(response: ServiceResponse) -> Dict[str, Any]:
    """The JSON body for any service response (trace included when present)."""
    body: Dict[str, Any] = {
        "status": response.status,
        "request_id": response.request_id,
        "trace": response.trace.to_dict() if response.trace is not None else None,
    }
    if isinstance(response, IntegrationResponse) and response.result is not None:
        body["table"] = table_to_json(response.result.table)
    elif isinstance(response, ServiceOverloaded):
        body["pending"] = response.pending
        body["max_pending"] = response.max_pending
    elif isinstance(response, DeadlineExceeded):
        body["stage"] = response.stage
        body["deadline_ms"] = response.deadline_ms
    elif isinstance(response, EmbedderUnavailableResponse):
        body["error"] = response.error
        body["retry_after_ms"] = response.retry_after_ms
    else:
        error = getattr(response, "error", None)
        if error:
            body["error"] = error
    return body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Read one HTTP/1.1 request; returns (method, path, body) or None on EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise BadRequest("malformed request line")
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as exc:
                raise BadRequest("invalid Content-Length") from exc
    if content_length > MAX_BODY_BYTES:
        raise BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


def _encode_response(
    code: int,
    reason: str,
    payload: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload, default=str).encode("utf-8")
    extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
    head = (
        f"HTTP/1.1 {code} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def _health_payload(service: IntegrationService) -> Tuple[int, str, Dict[str, Any]]:
    """Three-state health: breaker closed / open-with-fallback / open-dark."""
    breaker = service.engine.resilience_state()
    breaker_state = str(breaker.get("state", "closed"))
    payload: Dict[str, Any] = {
        "requests_served": service.engine.requests_served,
        "breaker": breaker,
    }
    if breaker_state == "closed":
        payload["status"] = "healthy"
        return 200, "OK", payload
    # half_open counts like open: the embedder is not known-good yet, but a
    # surface fallback still answers requests, so the pod should stay in
    # rotation ("degraded") rather than be drained ("unhealthy").
    if service.engine.config.degraded_mode == "surface":
        payload["status"] = "degraded"
        return 200, "OK", payload
    payload["status"] = "unhealthy"
    return 503, "Service Unavailable", payload


def _retry_after_header(retry_after_ms: float) -> Dict[str, str]:
    """``Retry-After`` (whole seconds, >= 1) from a breaker window in ms."""
    return {"Retry-After": str(max(1, math.ceil(retry_after_ms / 1000.0)))}


async def _dispatch(
    service: IntegrationService, method: str, path: str, body: bytes
) -> Tuple[int, str, Dict[str, Any], Dict[str, str]]:
    path = path.split("?", 1)[0]
    if method == "GET" and path == "/healthz":
        code, reason, payload = _health_payload(service)
        headers: Dict[str, str] = {}
        if code == 503:
            retry_after = service.engine.resilience_state().get("retry_after_ms", 0.0)
            headers = _retry_after_header(float(retry_after or 0.0))
        return code, reason, payload, headers
    if method == "GET" and path == "/stats":
        return 200, "OK", service.stats().to_dict(), {}
    if method == "POST" and path == "/integrate":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        tables = tables_from_json(payload.get("tables"))
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise BadRequest("deadline_ms must be a positive number")
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, dict):
            raise BadRequest("overrides must be an object")
        response = await service.integrate(
            tables, deadline_ms=deadline_ms, **overrides
        )
        code, reason = STATUS_CODES.get(response.status, (500, "Internal Server Error"))
        headers = {}
        if isinstance(response, EmbedderUnavailableResponse):
            headers = _retry_after_header(response.retry_after_ms)
        return code, reason, response_to_json(response), headers
    return 404, "Not Found", {"status": "error", "error": f"no route {method} {path}"}, {}


async def handle_connection(
    service: IntegrationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one request on one connection, then close it."""
    try:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            code, reason, payload, headers = await _dispatch(service, *request)
        except (BadRequest, asyncio.IncompleteReadError) as exc:
            code, reason, payload, headers = 400, "Bad Request", {
                "status": "error",
                "error": str(exc),
            }, {}
        writer.write(_encode_response(code, reason, payload, headers))
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client gone
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def start_http_server(
    service: IntegrationService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind and return the server (``port=0`` picks a free port).

    The bound address is ``server.sockets[0].getsockname()`` — the CLI
    prints it so scripted callers (the CI smoke job) can target an
    OS-assigned port.
    """

    async def _handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(_handler, host=host, port=port)


async def serve_forever(
    service: IntegrationService, host: str = "127.0.0.1", port: int = 0
) -> None:
    """Blocking entry point of ``repro serve``: run until cancelled."""
    server = await start_http_server(service, host=host, port=port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    async with server:
        await server.serve_forever()
