"""Asyncio front-end over a single long-lived :class:`IntegrationEngine`.

The :class:`IntegrationService` is the request/response boundary the ROADMAP
asks for: one warm engine (embedding cache, durable ANN indexes, memoised
surface keys) serving many concurrent requests.  The event loop only ever
does admission and bookkeeping — the CPU-bound pipeline runs on the
engine-owned worker pool (:meth:`IntegrationEngine.worker_pool`), the same
executor ``integrate_many`` batches over, so the two entry points share warm
threads as well as warm state.

Three properties the tests pin down:

* **Admission is synchronous.**  ``integrate()`` decides admit/reject under
  one lock before its first ``await``; a saturated service answers
  :class:`ServiceOverloaded` in microseconds regardless of how slow the
  pipeline is — backpressure, never an unbounded buffer.
* **The concurrency gate lives in the pool thread, not the loop.**  Waiting
  for a slot is queue time, charged to the request's trace, and the loop
  stays free to admit/reject while requests queue.  Everything is
  ``threading``-based, so the service survives many short-lived event loops
  (each test's ``asyncio.run``) without holding loop-bound state.
* **Accounting is atomic.**  A request's terminal counter (served /
  deadline_exceeded / failed) is incremented and the in-flight gauge
  decremented under the same lock, so ``stats()`` always satisfies
  ``submitted == served + rejected + deadline_exceeded + failed +
  in_flight``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from functools import partial
from typing import Any, Deque, Dict, Optional, Sequence, Union

from repro.core.config import FuzzyFDConfig
from repro.core.engine import FuzzyIntegrationResult, IntegrationEngine
from repro.embeddings.resilient import EmbedderUnavailable
from repro.service.types import (
    DeadlineExceeded,
    DeadlineExceededError,
    EmbedderUnavailableResponse,
    IntegrationResponse,
    RequestTrace,
    ServiceFailure,
    ServiceOverloaded,
    ServiceResponse,
    ServiceStats,
    StageTracker,
    build_trace,
    quantile,
)
from repro.table.table import Table

#: Completed-request latencies kept for the p50/p99 snapshot.
LATENCY_WINDOW = 2048


class IntegrationService:
    """Admission-controlled, deadline-aware serving layer over one engine.

    Parameters
    ----------
    engine:
        An existing :class:`IntegrationEngine` to serve, or anything the
        engine constructor accepts (a :class:`FuzzyFDConfig`, preset name,
        dict, or ``None``) — the service then builds and owns the engine.
    max_pending / max_concurrency / deadline_ms:
        Override the engine config's ``service_*`` knobs for this service.
        ``max_pending`` bounds admitted-but-not-executing requests (``0``
        rejects whenever every slot is busy); ``max_concurrency`` bounds
        simultaneously executing requests; ``deadline_ms`` is the default
        per-request budget (``None`` — no deadline unless the request sets
        one).
    """

    def __init__(
        self,
        engine: Union[IntegrationEngine, FuzzyFDConfig, str, Dict[str, Any], None] = None,
        *,
        max_pending: Optional[int] = None,
        max_concurrency: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        if isinstance(engine, IntegrationEngine):
            self.engine = engine
        else:
            self.engine = IntegrationEngine(engine)
        config = self.engine.config
        self.max_pending = (
            config.service_max_pending if max_pending is None else max_pending
        )
        self.max_concurrency = (
            config.service_max_concurrency if max_concurrency is None else max_concurrency
        )
        self.default_deadline_ms = (
            config.service_deadline_ms if deadline_ms is None else deadline_ms
        )
        if self.max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {self.max_pending}")
        if self.max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {self.default_deadline_ms}"
            )

        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(self.max_concurrency)
        self._next_request_id = 1
        self._submitted = 0
        self._served = 0
        self._rejected = 0
        self._deadline_exceeded = 0
        self._failed = 0
        self._unavailable = 0
        self._degraded_served = 0
        self._in_flight = 0
        self._executing = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._closed = False

    # -- the request path ----------------------------------------------------------
    async def integrate(
        self,
        tables: Sequence[Table],
        *,
        deadline_ms: Optional[float] = None,
        **overrides: Any,
    ) -> ServiceResponse:
        """Serve one integration request; never raises for operational outcomes.

        Returns an :class:`IntegrationResponse` on success, a
        :class:`ServiceOverloaded` when admission rejects (queue full), a
        :class:`DeadlineExceeded` when the budget expires at a stage
        boundary, or a :class:`ServiceFailure` when the pipeline raises.
        ``overrides`` are the engine's per-request knobs
        (:data:`~repro.core.engine.REQUEST_OVERRIDES`); ``deadline_ms``
        replaces the service default for this request only.
        """
        submitted_at = time.perf_counter()
        # Admission: one synchronous decision, no awaits, so a saturated
        # service rejects immediately instead of buffering without bound.
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._submitted += 1
            if self._closed:
                self._failed += 1
                return ServiceFailure(
                    request_id=request_id, error="service is closed", trace=None
                )
            pending = self._in_flight - self._executing
            if self._in_flight >= self.max_concurrency + self.max_pending:
                self._rejected += 1
                return ServiceOverloaded(
                    request_id=request_id,
                    pending=pending,
                    max_pending=self.max_pending,
                    trace=None,
                )
            self._in_flight += 1

        budget = deadline_ms if deadline_ms is not None else self.default_deadline_ms
        loop = asyncio.get_running_loop()
        work = partial(self._serve, request_id, list(tables), budget, submitted_at, overrides)
        try:
            return await loop.run_in_executor(
                self.engine.worker_pool(self.max_concurrency), work
            )
        except RuntimeError as exc:
            # The pool rejected the submission (shutdown race) — reconcile
            # the gauge so the accounting identity holds.
            with self._lock:
                self._in_flight -= 1
                self._failed += 1
            return ServiceFailure(request_id=request_id, error=str(exc), trace=None)

    def _serve(
        self,
        request_id: int,
        tables: Sequence[Table],
        deadline_ms: Optional[float],
        submitted_at: float,
        overrides: Dict[str, Any],
    ) -> ServiceResponse:
        """Pool-thread body: gate on a slot, run the pipeline, account once."""
        self._slots.acquire()
        with self._lock:
            self._executing += 1
        tracker = StageTracker(submitted_at=submitted_at, deadline_ms=deadline_ms)
        tracker.queue_wait_seconds = time.perf_counter() - submitted_at
        try:
            try:
                result: FuzzyIntegrationResult = self.engine.integrate(
                    tables, on_stage=tracker, **overrides
                )
            except DeadlineExceededError as exc:
                total = time.perf_counter() - submitted_at
                trace = RequestTrace(
                    request_id=request_id,
                    status="deadline_exceeded",
                    stage_seconds=dict(tracker.stage_seconds),
                    queue_wait_seconds=tracker.queue_wait_seconds,
                    total_seconds=total,
                    deadline_ms=deadline_ms,
                )
                self._finish("deadline_exceeded", total)
                return DeadlineExceeded(
                    request_id=request_id,
                    stage=exc.stage,
                    deadline_ms=exc.deadline_ms,
                    trace=trace,
                )
            except EmbedderUnavailable as exc:
                # Under degraded_mode="surface" the matcher absorbs the open
                # breaker, so reaching here means the policy is "off"/"fail":
                # an operational outcome, answered as a response like every
                # other one.
                total = time.perf_counter() - submitted_at
                self._finish("unavailable", total)
                return EmbedderUnavailableResponse(
                    request_id=request_id,
                    error=str(exc),
                    retry_after_ms=exc.retry_after_ms,
                    trace=None,
                )
            except Exception as exc:  # noqa: BLE001 — relayed, service stays up
                total = time.perf_counter() - submitted_at
                self._finish("failed", total)
                return ServiceFailure(
                    request_id=request_id,
                    error=f"{type(exc).__name__}: {exc}",
                    trace=None,
                )
            total = time.perf_counter() - submitted_at
            trace = build_trace(request_id, result, tracker, total)
            self._finish("served", total, degraded=trace.degraded)
            return IntegrationResponse(request_id=request_id, result=result, trace=trace)
        finally:
            with self._lock:
                self._executing -= 1
            self._slots.release()

    def _finish(self, outcome: str, latency_seconds: float, *, degraded: bool = False) -> None:
        """Terminal accounting: counter up + gauge down under one lock."""
        with self._lock:
            self._in_flight -= 1
            if outcome == "served":
                self._served += 1
                if degraded:
                    self._degraded_served += 1
            elif outcome == "deadline_exceeded":
                self._deadline_exceeded += 1
            elif outcome == "unavailable":
                self._unavailable += 1
            else:
                self._failed += 1
            self._latencies.append(latency_seconds)

    # -- observability & lifecycle -------------------------------------------------
    def stats(self) -> ServiceStats:
        """Consistent aggregate snapshot (see :class:`ServiceStats`)."""
        resilience = self.engine.resilience_state()
        with self._lock:
            samples = sorted(self._latencies)
            return ServiceStats(
                submitted=self._submitted,
                served=self._served,
                rejected=self._rejected,
                deadline_exceeded=self._deadline_exceeded,
                failed=self._failed,
                unavailable=self._unavailable,
                in_flight=self._in_flight,
                executing=self._executing,
                queued=self._in_flight - self._executing,
                latency_p50_seconds=quantile(samples, 0.50),
                latency_p99_seconds=quantile(samples, 0.99),
                degraded_served=self._degraded_served,
                breaker_state=str(resilience.get("state", "closed")),
                embedder_retries=int(resilience.get("retries", 0)),
                breaker_opens=int(resilience.get("breaker_opens", 0)),
            )

    def close(self) -> None:
        """Stop admitting requests and drain the engine's worker pool."""
        with self._lock:
            self._closed = True
        self.engine.close()

    async def __aenter__(self) -> "IntegrationService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        stats = self.stats()
        return (
            f"IntegrationService(max_pending={self.max_pending}, "
            f"max_concurrency={self.max_concurrency}, "
            f"served={stats.served}, in_flight={stats.in_flight})"
        )
