"""The serving layer: a request/response boundary over one warm engine.

``repro.service`` wraps a single long-lived
:class:`~repro.core.engine.IntegrationEngine` in an asyncio front-end with
admission control (bounded pending queue → :class:`ServiceOverloaded`),
per-request deadlines checked at stage boundaries
(→ :class:`DeadlineExceeded` with a partial trace), and per-request tracing
(:class:`RequestTrace` on every response, aggregates via
:meth:`IntegrationService.stats`).  The optional stdlib-only HTTP adapter
lives in :mod:`repro.service.http`; ``repro serve`` wires it to a config and
an artifact store so restarts are warm.
"""

from repro.service.service import LATENCY_WINDOW, IntegrationService
from repro.service.types import (
    TRACE_COUNTER_SOURCES,
    DeadlineExceeded,
    DeadlineExceededError,
    EmbedderUnavailableResponse,
    IntegrationResponse,
    RequestTrace,
    ServiceFailure,
    ServiceOverloaded,
    ServiceResponse,
    ServiceStats,
    StageTracker,
    build_trace,
)

__all__ = [
    "IntegrationService",
    "IntegrationResponse",
    "RequestTrace",
    "ServiceResponse",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "DeadlineExceededError",
    "EmbedderUnavailableResponse",
    "ServiceFailure",
    "ServiceStats",
    "StageTracker",
    "build_trace",
    "TRACE_COUNTER_SOURCES",
    "LATENCY_WINDOW",
]
