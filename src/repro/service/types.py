"""Typed request/response vocabulary of the integration service.

The serving layer (:class:`~repro.service.IntegrationService`) never raises
for operational outcomes — overload, deadline overrun and handler failure are
*responses*, not exceptions, so a caller can pattern-match on ``status``
without wrapping every await in try/except.  The one exception type defined
here, :class:`DeadlineExceededError`, is internal: the
:class:`StageTracker` raises it inside the engine's ``on_stage`` hook and
the service converts it into a :class:`DeadlineExceeded` response before it
ever reaches a caller.

Every response carries a :class:`RequestTrace` (``None`` only on
:class:`ServiceOverloaded`, where no work ran).  The trace is assembled from
data the pipeline already records — stage wall-clock from the
``on_stage`` boundaries, ANN/blocking and cache-delta counters from
:class:`~repro.core.value_matching.ValueMatchingResult.statistics` — so
tracing adds no instrumentation to the hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import FuzzyIntegrationResult

#: Trace counter -> the per-group ``ValueMatchingResult.statistics`` key it
#: aggregates (summed across aligned column groups).
TRACE_COUNTER_SOURCES: Dict[str, str] = {
    "ann_pairs_added": "blocking_ann_pairs_added",
    "ann_probe_candidates": "blocking_ann_probe_candidates",
    "ann_bucket_skew": "blocking_ann_skew_fallbacks",
    "cache_hits": "cache_hits",
    "cache_misses": "cache_misses",
    "cache_fills": "cache_fills",
    "cache_store_hits": "cache_store_hits",
    "cache_store_misses": "cache_store_misses",
    "embedder_retries": "embedder_retries",
    "breaker_opens": "breaker_opens",
    "breaker_short_circuits": "breaker_short_circuits",
}


@dataclass
class RequestTrace:
    """Per-request observability record attached to every service response.

    ``stage_seconds`` holds wall-clock per pipeline stage (``align`` /
    ``match`` / ``integrate``) in execution order; on a
    :class:`DeadlineExceeded` response it is partial — only the stages that
    finished before the budget ran out appear.  ``raw_embed_calls`` is the
    number of values that reached the underlying embedding model this
    request: in-memory cache misses not absorbed by the durable store
    (``cache_misses - cache_store_hits``).
    """

    request_id: int
    status: str = "ok"
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    queue_wait_seconds: float = 0.0
    total_seconds: float = 0.0
    deadline_ms: Optional[float] = None
    ann_pairs_added: float = 0.0
    ann_probe_candidates: float = 0.0
    ann_bucket_skew: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    cache_fills: float = 0.0
    cache_store_hits: float = 0.0
    cache_store_misses: float = 0.0
    store_published_rows: float = 0.0
    #: True when any column group was matched without embeddings because the
    #: embedder breaker was open and ``degraded_mode="surface"`` applied —
    #: the answer is valid but its recall is below the healthy path.
    degraded: bool = False
    embedder_retries: float = 0.0
    breaker_opens: float = 0.0
    breaker_short_circuits: float = 0.0
    #: Corrupt store artifacts this request tripped over (now quarantined).
    store_corrupt_segments: float = 0.0

    @property
    def raw_embed_calls(self) -> float:
        """Values embedded by the raw model (missed cache *and* store)."""
        return max(0.0, self.cache_misses - self.cache_store_hits)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (what the HTTP adapter serialises)."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "stage_seconds": dict(self.stage_seconds),
            "queue_wait_seconds": self.queue_wait_seconds,
            "total_seconds": self.total_seconds,
            "deadline_ms": self.deadline_ms,
            "ann_pairs_added": self.ann_pairs_added,
            "ann_probe_candidates": self.ann_probe_candidates,
            "ann_bucket_skew": self.ann_bucket_skew,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_fills": self.cache_fills,
            "cache_store_hits": self.cache_store_hits,
            "cache_store_misses": self.cache_store_misses,
            "raw_embed_calls": self.raw_embed_calls,
            "store_published_rows": self.store_published_rows,
            "degraded": self.degraded,
            "embedder_retries": self.embedder_retries,
            "breaker_opens": self.breaker_opens,
            "breaker_short_circuits": self.breaker_short_circuits,
            "store_corrupt_segments": self.store_corrupt_segments,
        }


class DeadlineExceededError(Exception):
    """Raised by :class:`StageTracker` when the budget expires at a boundary.

    Internal to the service: callers see the :class:`DeadlineExceeded`
    *response* built from this, never the exception.  ``stage`` names the
    stage that was about to start when the budget ran out.
    """

    def __init__(self, stage: str, elapsed_seconds: float, deadline_ms: float) -> None:
        self.stage = stage
        self.elapsed_seconds = elapsed_seconds
        self.deadline_ms = deadline_ms
        super().__init__(
            f"deadline of {deadline_ms:.0f} ms exceeded after "
            f"{elapsed_seconds * 1000.0:.0f} ms, at the {stage!r} stage boundary"
        )


class StageTracker:
    """``on_stage`` hook: per-stage wall clock + stage-boundary deadlines.

    The engine calls the tracker with each stage about to run (``"align"``,
    ``"match"``, ``"integrate"``) and finally with ``"complete"``.  The
    tracker closes the previous stage's timing at every call, and — when a
    deadline was set — raises :class:`DeadlineExceededError` *before* the
    next stage starts if the budget (measured from request submission, so
    queue wait counts against it) has run out.  A request whose last stage
    overruns still completes: ``"complete"`` only closes timings, because
    abandoning finished work buys nothing.
    """

    def __init__(self, submitted_at: float, deadline_ms: Optional[float] = None) -> None:
        self.submitted_at = submitted_at
        self.deadline_ms = deadline_ms
        self.queue_wait_seconds = 0.0
        self.stage_seconds: Dict[str, float] = {}
        self._open: Optional[Tuple[str, float]] = None

    def __call__(self, stage: str) -> None:
        now = time.perf_counter()
        if self._open is not None:
            name, started = self._open
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + (now - started)
            self._open = None
        if stage == "complete":
            return
        if self.deadline_ms is not None:
            elapsed = now - self.submitted_at
            if elapsed * 1000.0 > self.deadline_ms:
                raise DeadlineExceededError(stage, elapsed, self.deadline_ms)
        self._open = (stage, now)


@dataclass
class ServiceResponse:
    """Common shape of every service reply; subclasses fix ``status``."""

    request_id: int
    status: str
    trace: Optional[RequestTrace] = None


@dataclass
class IntegrationResponse(ServiceResponse):
    """Success: the integration result plus its full trace."""

    result: Optional[FuzzyIntegrationResult] = None
    status: str = "ok"


@dataclass
class ServiceOverloaded(ServiceResponse):
    """Rejected at admission: the pending queue was full (backpressure)."""

    pending: int = 0
    max_pending: int = 0
    status: str = "overloaded"


@dataclass
class DeadlineExceeded(ServiceResponse):
    """The deadline expired at a stage boundary; ``trace`` is partial."""

    stage: str = ""
    deadline_ms: float = 0.0
    status: str = "deadline_exceeded"


@dataclass
class ServiceFailure(ServiceResponse):
    """The pipeline raised; the message is relayed, the service stays up."""

    error: str = ""
    status: str = "error"


@dataclass
class EmbedderUnavailableResponse(ServiceResponse):
    """The embedder breaker is open and ``degraded_mode="fail"`` applies.

    The HTTP adapter maps this to 503 with a ``Retry-After`` header derived
    from ``retry_after_ms`` — the remaining open window of the breaker.
    """

    error: str = ""
    retry_after_ms: float = 0.0
    status: str = "unavailable"


@dataclass
class ServiceStats:
    """Aggregate snapshot returned by :meth:`IntegrationService.stats`.

    At any instant ``submitted == served + rejected + deadline_exceeded +
    failed + in_flight`` — the terminal counters and the in-flight gauge are
    updated under one lock so no request is ever counted twice or dropped.
    ``queued`` is ``in_flight - executing``: admitted requests still waiting
    for a concurrency slot.
    """

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    failed: int = 0
    unavailable: int = 0
    in_flight: int = 0
    executing: int = 0
    queued: int = 0
    latency_p50_seconds: float = 0.0
    latency_p99_seconds: float = 0.0
    #: Successful responses whose trace was marked degraded (subset of
    #: ``served``).
    degraded_served: int = 0
    #: Current circuit-breaker state of the engine's embedder.
    breaker_state: str = "closed"
    #: Cumulative embedder retry / breaker-open counts over the engine's
    #: lifetime (from the resilient wrapper, not per-request deltas).
    embedder_retries: int = 0
    breaker_opens: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "unavailable": self.unavailable,
            "in_flight": self.in_flight,
            "executing": self.executing,
            "queued": self.queued,
            "latency_p50_seconds": self.latency_p50_seconds,
            "latency_p99_seconds": self.latency_p99_seconds,
            "degraded_served": self.degraded_served,
            "breaker_state": self.breaker_state,
            "embedder_retries": self.embedder_retries,
            "breaker_opens": self.breaker_opens,
        }


def build_trace(
    request_id: int,
    result: FuzzyIntegrationResult,
    tracker: StageTracker,
    total_seconds: float,
) -> RequestTrace:
    """Assemble the success trace from the pipeline's own statistics."""
    counters: Dict[str, float] = {}
    for trace_key, source_key in TRACE_COUNTER_SOURCES.items():
        counters[trace_key] = sum(
            vm.statistics.get(source_key, 0.0) for vm in result.value_matching.values()
        )
    return RequestTrace(
        request_id=request_id,
        status="ok",
        stage_seconds=dict(tracker.stage_seconds),
        queue_wait_seconds=tracker.queue_wait_seconds,
        total_seconds=total_seconds,
        deadline_ms=tracker.deadline_ms,
        store_published_rows=result.timings.get("store_published_rows", 0.0),
        degraded=any(
            vm.statistics.get("degraded", 0.0) > 0.0
            for vm in result.value_matching.values()
        ),
        store_corrupt_segments=result.timings.get("store_corrupt_segments", 0.0),
        **counters,
    )


def quantile(samples: List[float], q: float) -> float:
    """Nearest-rank quantile of a sorted sample list (0 on empty input)."""
    if not samples:
        return 0.0
    index = int(round(q * (len(samples) - 1)))
    return samples[index]
