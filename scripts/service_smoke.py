"""CI smoke test for ``repro serve``: boot, round-trip, well-formed trace.

Starts the real CLI entry point (``python -m repro.cli serve``) as a
subprocess against a temporary artifact store on an OS-assigned port, then
exercises the HTTP surface end to end:

1. ``GET /healthz`` answers healthy.
2. ``POST /integrate`` merges two small tables and the response carries a
   well-formed trace: every stage timing, the cache/ANN counters, and a
   positive total.
3. A second identical ``POST /integrate`` is served from the warm engine —
   its trace must report zero raw embed calls.
4. ``GET /stats`` accounts for both requests.

Then a second server boots with a hard-down chaos embedder
(``--embedder chaos`` + ``REPRO_CHAOS_EMBED_FAILURES=all``) in
``--degraded-mode surface``: ``POST /integrate`` must still answer 200 with
``degraded: true`` in its trace, and ``GET /healthz`` must report
``degraded`` — an open breaker never becomes an unhandled 500.

Exits non-zero (with the server log on stderr) on any failure, so the CI
job fails loudly.  Run locally with ``python scripts/service_smoke.py``.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

INTEGRATE_BODY = {
    "tables": [
        {
            "name": "population",
            "columns": ["City", "Country"],
            "rows": [["Berlinn", "Germany"], ["Toronto", "Canada"]],
        },
        {
            "name": "vaccination",
            "columns": ["City", "VaxRate"],
            "rows": [["Berlin", "63%"], ["Toronto", "83%"]],
        },
    ]
}

TRACE_REQUIRED_KEYS = (
    "stage_seconds",
    "queue_wait_seconds",
    "total_seconds",
    "ann_pairs_added",
    "ann_probe_candidates",
    "ann_bucket_skew",
    "cache_hits",
    "cache_misses",
    "raw_embed_calls",
)


def wait_for_port(process: subprocess.Popen, timeout_seconds: float = 30.0) -> int:
    """Read the server's stdout until it prints the bound port."""
    deadline = time.time() + timeout_seconds
    pattern = re.compile(r"serving on http://[^:]+:(\d+)")
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before binding (code {process.poll()})"
            )
        sys.stderr.write(line)
        match = pattern.search(line)
        if match:
            return int(match.group(1))
    raise SystemExit("server did not bind within the timeout")


def request(port: int, method: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as response:
        return json.loads(response.read().decode())


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"smoke FAILED: {message}")


def assert_well_formed_trace(trace: dict, label: str) -> None:
    expect(isinstance(trace, dict), f"{label}: trace missing from response")
    for key in TRACE_REQUIRED_KEYS:
        expect(key in trace, f"{label}: trace is missing {key!r}")
    expect(
        set(trace["stage_seconds"]) == {"align", "match", "integrate"},
        f"{label}: expected all three stage timings, got {trace['stage_seconds']}",
    )
    expect(trace["total_seconds"] > 0, f"{label}: non-positive total_seconds")


def serve(extra_args: list[str] | None = None, extra_env: dict | None = None, **popen_kwargs):
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *(extra_args or [])],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        **popen_kwargs,
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as store_dir:
        process = serve(["--store-dir", store_dir])
        try:
            port = wait_for_port(process)

            health = request(port, "GET", "/healthz")
            expect(health.get("status") == "healthy", f"healthz said {health}")

            first = request(port, "POST", "/integrate", INTEGRATE_BODY)
            expect(first.get("status") == "ok", f"integrate said {first.get('status')}")
            expect("table" in first, "integrate response has no table")
            columns = set(first["table"]["columns"])
            expect(
                columns == {"City", "Country", "VaxRate"},
                f"unexpected output schema {sorted(columns)}",
            )
            assert_well_formed_trace(first.get("trace"), "first request")

            second = request(port, "POST", "/integrate", INTEGRATE_BODY)
            expect(second.get("status") == "ok", "second integrate failed")
            assert_well_formed_trace(second.get("trace"), "second request")
            expect(
                second["trace"]["raw_embed_calls"] == 0,
                "warm engine still made raw embed calls on the second request",
            )

            stats = request(port, "GET", "/stats")
            expect(stats.get("served") == 2, f"stats said served={stats.get('served')}")
            expect(stats.get("submitted") == 2, "stats lost a submission")

            print("service smoke OK: healthz + 2x integrate + stats, traces well-formed")
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

    # Degraded path: a hard-down embedder must surface as 200 + degraded,
    # never an unhandled 500.
    process = serve(
        [
            "--embedder",
            "chaos",
            "--degraded-mode",
            "surface",
            "--breaker-failure-threshold",
            "1",
            "--retry-max-attempts",
            "1",
            "--retry-backoff-ms",
            "1",
        ],
        extra_env={"REPRO_CHAOS_EMBED_FAILURES": "all"},
    )
    try:
        port = wait_for_port(process)

        degraded = request(port, "POST", "/integrate", INTEGRATE_BODY)
        expect(
            degraded.get("status") == "ok",
            f"degraded integrate said {degraded.get('status')}",
        )
        expect(
            degraded.get("trace", {}).get("degraded") is True,
            "open breaker did not mark the trace degraded",
        )

        health = request(port, "GET", "/healthz")
        expect(
            health.get("status") == "degraded",
            f"healthz under open breaker said {health}",
        )

        print("service smoke OK: chaos embedder served degraded, healthz degraded")
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
