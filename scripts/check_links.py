#!/usr/bin/env python
"""Fail on dead *relative* links in markdown documentation.

Scans the markdown files given on the command line (directories are searched
recursively for ``*.md``) for inline links and images, resolves every
relative target against the containing file, and exits non-zero listing the
targets that do not exist on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored — this
checker guards the repo's internal cross-references (``docs/`` ↔ ``README``
↔ source pointers), which silently rot when files move.

Usage (what CI runs)::

    python scripts/check_links.py README.md docs

Stdlib-only on purpose: the checker must run in the bare CI interpreter.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
#: The target group stops at the first closing parenthesis or whitespace
#: (titles like ``(file.md "tooltip")`` keep only the path part).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Target prefixes that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: Iterable[str]) -> List[Path]:
    """Expand the CLI arguments into a sorted list of markdown files."""
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix.lower() == ".md":
            files.append(path)
        else:
            raise SystemExit(f"error: {path} is neither a markdown file nor a directory")
    return files


def dead_links(markdown_file: Path) -> List[Tuple[str, str]]:
    """``(raw target, reason)`` for every broken relative link in one file."""
    broken: List[Tuple[str, str]] = []
    text = markdown_file.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        # Strip an in-page anchor from a file target (docs/x.md#section).
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (markdown_file.parent / path_part).resolve()
        if not resolved.exists():
            broken.append((target, f"resolves to missing {resolved}"))
    return broken


def main(argv: List[str]) -> int:
    if not argv:
        raise SystemExit("usage: check_links.py FILE_OR_DIR [FILE_OR_DIR ...]")
    files = iter_markdown_files(argv)
    if not files:
        raise SystemExit("error: no markdown files found")
    failures = 0
    checked = 0
    for markdown_file in files:
        checked += 1
        for target, reason in dead_links(markdown_file):
            failures += 1
            print(f"{markdown_file}: dead link '{target}' ({reason})")
    if failures:
        print(f"\n{failures} dead link(s) across {checked} file(s)")
        return 1
    print(f"ok: {checked} markdown file(s), no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
